"""Acoustic wave propagation on the stencil kernel.

Second-order-in-time, second-order-in-space wave equation on a 2-D grid —
the structured-grid application class the Stencil workload serves.  The
leapfrog update

    u_next = 2 u - u_prev + c^2 dt^2 Laplacian(u)

is evaluated through the same star2d1r sweep the StencilWorkload models,
keeping the stability (CFL) bookkeeping explicit so the tests can verify
both physics and cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Variant, WorkloadCase
from ..kernels.stencil import StencilWorkload

__all__ = ["WaveSimulation", "cfl_limit"]


def cfl_limit(c: float, dx: float) -> float:
    """Largest stable timestep for the 2-D 5-point scheme."""
    if c <= 0 or dx <= 0:
        raise ValueError("wave speed and grid spacing must be positive")
    return dx / (c * np.sqrt(2.0))


@dataclass
class WaveSimulation:
    """Explicit 2-D wave solver with open (absorbing-ish zero) borders."""

    n: int
    c: float = 1.0
    dx: float = 1.0
    dt: float | None = None

    def __post_init__(self) -> None:
        if self.n < 8:
            raise ValueError("grid too small")
        limit = cfl_limit(self.c, self.dx)
        if self.dt is None:
            self.dt = 0.5 * limit
        if self.dt > limit:
            raise ValueError(
                f"dt {self.dt} violates the CFL limit {limit:.4g}")
        self.u = np.zeros((self.n, self.n))
        self.u_prev = np.zeros((self.n, self.n))
        self.steps_taken = 0

    # ------------------------------------------------------------------
    def add_source(self, i: int, j: int, amplitude: float = 1.0,
                   radius: int = 2) -> None:
        """Gaussian initial displacement centred at (i, j)."""
        yy, xx = np.mgrid[:self.n, :self.n]
        blob = amplitude * np.exp(-(((yy - i) ** 2 + (xx - j) ** 2)
                                    / max(radius, 1) ** 2))
        self.u += blob
        self.u_prev += blob  # start at rest

    def laplacian(self, u: np.ndarray) -> np.ndarray:
        """5-point Laplacian with zero boundaries (one stencil sweep)."""
        lap = -4.0 * u
        lap[1:, :] += u[:-1, :]
        lap[:-1, :] += u[1:, :]
        lap[:, 1:] += u[:, :-1]
        lap[:, :-1] += u[:, 1:]
        return lap / self.dx ** 2

    def step(self, n_steps: int = 1) -> None:
        r2 = (self.c * self.dt) ** 2
        for _ in range(n_steps):
            u_next = 2.0 * self.u - self.u_prev + r2 * self.laplacian(self.u)
            self.u_prev, self.u = self.u, u_next
            self.steps_taken += 1

    # ------------------------------------------------------------------
    def energy(self) -> float:
        """Discrete energy: kinetic + potential (monitors stability)."""
        v = (self.u - self.u_prev) / self.dt
        gx = np.diff(self.u, axis=0) / self.dx
        gy = np.diff(self.u, axis=1) / self.dx
        return float(0.5 * (v ** 2).sum()
                     + 0.5 * self.c ** 2 * ((gx ** 2).sum()
                                            + (gy ** 2).sum()))

    def modeled_step_cost(self, device: Device,
                          variant: Variant = Variant.TC) -> float:
        """Modeled time of one leapfrog step (one star2d1r sweep plus the
        AXPY-like combination, which the sweep's traffic already covers)."""
        w = StencilWorkload()
        case = WorkloadCase(label=f"wave:{self.n}",
                            params={"kind": "star2d1r", "nx": self.n,
                                    "ny": self.n, "nz": 1})
        return device.resolve(w.analytic_stats(variant, case)).time_s
