"""Application layer: the HPC codes the Cubie kernels serve.

These are working miniature applications (not stubs) built entirely on the
public API — a CG solver (SpMV + Reduction), an algebraic multigrid
(SpGEMM + SpMV, the AmgT setting), a wave solver (Stencil), and a plasma
pusher (PiC) — each with modeled device costs so the paper's
application-researcher questions can be asked end to end.
"""

from .amg import (
    AmgHierarchy,
    AmgLevel,
    build_hierarchy,
    modeled_setup_cost,
    modeled_vcycle_cost,
    solve,
    v_cycle,
)
from .cg import CgResult, conjugate_gradient, modeled_iteration_cost
from .plasma import PlasmaSimulation
from .wave import WaveSimulation, cfl_limit

__all__ = [
    "AmgHierarchy",
    "AmgLevel",
    "build_hierarchy",
    "modeled_setup_cost",
    "modeled_vcycle_cost",
    "solve",
    "v_cycle",
    "CgResult",
    "conjugate_gradient",
    "modeled_iteration_cost",
    "PlasmaSimulation",
    "WaveSimulation",
    "cfl_limit",
]
