"""Algebraic multigrid built on the Cubie kernels.

The suite's SpGEMM workload comes from AmgT (Lu et al., SC'24), whose job
is AMG: the Galerkin triple product ``A_coarse = R A P`` is a pair of
SpGEMMs, and the smoothers are SpMVs.  This module implements a compact
smoothed-less (plain) aggregation AMG on the CSR substrate — strength
graph, greedy aggregation, tentative prolongator, Galerkin coarsening via
:meth:`CsrMatrix.spgemm`, weighted-Jacobi smoothing — and costs a V-cycle
on a simulated device through the SpGEMM/SpMV workload models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Variant
from ..kernels.spgemm import SpgemmWorkload
from ..kernels.spmv import SpmvWorkload
from ..sparse.csr import CsrMatrix
from ..sparse.dasp import DaspMatrix
from ..sparse.mbsr import MbsrMatrix

__all__ = ["AmgLevel", "AmgHierarchy", "build_hierarchy", "v_cycle",
           "solve", "modeled_setup_cost", "modeled_vcycle_cost"]


@dataclass
class AmgLevel:
    """One level: operator, prolongator to this level, and its diagonal."""

    a: CsrMatrix
    p: CsrMatrix | None        # None on the finest level
    diag: np.ndarray


@dataclass
class AmgHierarchy:
    levels: list[AmgLevel] = field(default_factory=list)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def operator_complexity(self) -> float:
        """Sum of all operators' nnz over the finest nnz."""
        fine = max(self.levels[0].a.nnz, 1)
        return sum(lv.a.nnz for lv in self.levels) / fine


def _diagonal(a: CsrMatrix) -> np.ndarray:
    d = np.zeros(a.n_rows)
    rows = a.row_of_entry()
    on = rows == a.indices
    d[rows[on]] = a.data[on]
    return d


def _strength_aggregates(a: CsrMatrix, theta: float = 0.08) -> np.ndarray:
    """Greedy aggregation over the strength graph.

    Entry (i, j) is strong when |a_ij| >= theta * sqrt(|a_ii a_jj|).
    Returns aggregate ids per row (every row assigned)."""
    d = np.abs(_diagonal(a))
    d = np.where(d <= 0, 1.0, d)
    rows = a.row_of_entry()
    strong = (np.abs(a.data)
              >= theta * np.sqrt(d[rows] * d[a.indices])) \
        & (rows != a.indices)
    agg = np.full(a.n_rows, -1, dtype=np.int64)
    next_agg = 0
    # pass 1: seed aggregates from unassigned rows and their strong nbrs
    for i in range(a.n_rows):
        if agg[i] >= 0:
            continue
        lo, hi = a.indptr[i], a.indptr[i + 1]
        nbrs = a.indices[lo:hi][strong[lo:hi]]
        free = nbrs[agg[nbrs] < 0]
        agg[i] = next_agg
        agg[free] = next_agg
        next_agg += 1
    return agg


def _tentative_prolongator(agg: np.ndarray) -> CsrMatrix:
    n = len(agg)
    n_coarse = int(agg.max()) + 1 if n else 0
    return CsrMatrix.from_coo(np.arange(n), agg, np.ones(n),
                              (n, n_coarse), sum_duplicates=False)


def build_hierarchy(a: CsrMatrix, *, max_levels: int = 10,
                    min_coarse: int = 40,
                    theta: float = 0.08) -> AmgHierarchy:
    """Plain-aggregation AMG setup via Galerkin SpGEMM products."""
    if a.n_rows != a.n_cols:
        raise ValueError("AMG needs a square matrix")
    h = AmgHierarchy()
    h.levels.append(AmgLevel(a=a, p=None, diag=_diagonal(a)))
    current = a
    while len(h.levels) < max_levels and current.n_rows > min_coarse:
        agg = _strength_aggregates(current, theta)
        p = _tentative_prolongator(agg)
        if p.n_cols >= current.n_rows:
            break  # aggregation stalled
        # Galerkin: A_c = P^T (A P) — two SpGEMMs + a transpose
        ap = current.spgemm(p)
        a_coarse = p.transpose().spgemm(ap)
        h.levels.append(AmgLevel(a=a_coarse, p=p,
                                 diag=_diagonal(a_coarse)))
        current = a_coarse
    return h


def _jacobi(a: CsrMatrix, diag: np.ndarray, x: np.ndarray, b: np.ndarray,
            sweeps: int, omega: float) -> np.ndarray:
    d = np.where(np.abs(diag) <= 1e-300, 1.0, diag)
    for _ in range(sweeps):
        x = x + omega * (b - a.spmv_serial(x)) / d
    return x


def v_cycle(h: AmgHierarchy, b: np.ndarray, x: np.ndarray | None = None,
            level: int = 0, *, pre: int = 2, post: int = 2,
            omega: float = 0.67) -> np.ndarray:
    """One V(pre,post)-cycle with weighted-Jacobi smoothing."""
    lv = h.levels[level]
    if x is None:
        x = np.zeros(lv.a.n_rows)
    if level == h.n_levels - 1:
        # coarsest: heavy smoothing stands in for a direct solve
        return _jacobi(lv.a, lv.diag, x, b, sweeps=30, omega=omega)
    x = _jacobi(lv.a, lv.diag, x, b, pre, omega)
    residual = b - lv.a.spmv_serial(x)
    p = h.levels[level + 1].p
    coarse_b = p.transpose().spmv_serial(residual)
    coarse_x = v_cycle(h, coarse_b, None, level + 1,
                       pre=pre, post=post, omega=omega)
    x = x + p.spmv_serial(coarse_x)
    return _jacobi(lv.a, lv.diag, x, b, post, omega)


def solve(a: CsrMatrix, b: np.ndarray, *, tol: float = 1e-8,
          max_cycles: int = 60, **cycle_kwargs
          ) -> tuple[np.ndarray, list[float], AmgHierarchy]:
    """Stationary AMG iteration: repeat V-cycles until the residual drops
    below ``tol`` (relative)."""
    h = build_hierarchy(a)
    x = np.zeros(a.n_rows)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.linalg.norm(b - a.spmv_serial(x))) / b_norm]
    for _ in range(max_cycles):
        x = v_cycle(h, b, x, **cycle_kwargs)
        history.append(
            float(np.linalg.norm(b - a.spmv_serial(x))) / b_norm)
        if history[-1] < tol:
            break
    return x, history, h


# ---------------------------------------------------------------- costing
def modeled_setup_cost(h: AmgHierarchy, device: Device,
                       variant: Variant = Variant.TC) -> float:
    """Modeled time of the Galerkin products across the hierarchy."""
    w = SpgemmWorkload()
    total = 0.0
    for lv in h.levels[:-1]:
        stats = w._stats(variant, lv.a, MbsrMatrix.from_csr(lv.a))
        # two products (A P and P^T (A P)) of comparable size
        total += 2.0 * device.timing.time(stats)
    return total


def modeled_vcycle_cost(h: AmgHierarchy, device: Device,
                        variant: Variant = Variant.TC, *,
                        pre: int = 2, post: int = 2) -> float:
    """Modeled time of one V-cycle (smoother + residual + transfers, all
    SpMV-shaped, costed per level on its own operator)."""
    w = SpmvWorkload()
    total = 0.0
    for i, lv in enumerate(h.levels):
        stats = w._stats(variant, lv.a, DaspMatrix.from_csr(lv.a))
        t = device.timing.time(stats)
        if i == h.n_levels - 1:
            total += 30 * t
        else:
            total += (pre + post + 1) * t  # smoothing sweeps + residual
            total += 2 * t                 # restrict + prolong (P-shaped)
    return total
