"""Conjugate-gradient solver built on the Cubie kernels.

The paper's SpMV and Reduction workloads exist because solvers like CG
spend their time in exactly these two kernels.  This module implements CG
on the package's own CSR substrate and costs every iteration on a
simulated device through the SpMV and Reduction workload models, so an
application researcher can ask the paper's question — *do MMUs pay off for
my solver?* — end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Variant
from ..kernels.reduction import ReductionWorkload
from ..kernels.spmv import SpmvWorkload, gather_segment_bytes
from ..sparse.csr import CsrMatrix
from ..sparse.dasp import DaspMatrix

__all__ = ["CgResult", "conjugate_gradient", "modeled_iteration_cost"]


@dataclass
class CgResult:
    """Solution and convergence history."""

    x: np.ndarray
    residuals: list[float]
    iterations: int
    converged: bool

    @property
    def final_residual(self) -> float:
        return self.residuals[-1]


def conjugate_gradient(a: CsrMatrix, b: np.ndarray, *,
                       tol: float = 1e-8, max_iter: int = 500,
                       x0: np.ndarray | None = None) -> CgResult:
    """Unpreconditioned CG for SPD systems, using the CSR substrate's
    serial-order SpMV (the numerics reference path)."""
    if a.n_rows != a.n_cols:
        raise ValueError("CG needs a square matrix")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (a.n_rows,):
        raise ValueError(f"b must have shape ({a.n_rows},)")
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = b - a.spmv_serial(x)
    p = r.copy()
    rs = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    residuals = [float(np.sqrt(rs)) / b_norm]
    if residuals[0] < tol:
        return CgResult(x, residuals, 0, True)
    for it in range(1, max_iter + 1):
        ap = a.spmv_serial(p)
        denom = float(p @ ap)
        if denom <= 0:
            # matrix not SPD along p: bail out with what we have
            return CgResult(x, residuals, it - 1, False)
        alpha = rs / denom
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(r @ r)
        residuals.append(float(np.sqrt(rs_new)) / b_norm)
        if residuals[-1] < tol:
            return CgResult(x, residuals, it, True)
        p = r + (rs_new / rs) * p
        rs = rs_new
    return CgResult(x, residuals, max_iter, False)


def modeled_iteration_cost(a: CsrMatrix, device: Device,
                           variant: Variant = Variant.TC) -> dict[str, float]:
    """Model one CG iteration's time/energy on a device.

    One iteration = 1 SpMV + 2 dot products (reductions) + 3 AXPYs.
    SpMV is costed through the SpMV workload's stat builder on this very
    matrix; the dots through the Reduction model; AXPYs as streaming
    vector traffic.
    """
    spmv = SpmvWorkload()
    spmv_stats = spmv._stats(variant, a, DaspMatrix.from_csr(a))
    t_spmv = device.timing.time(spmv_stats)

    red = ReductionWorkload()
    red_stats = red._stats(variant, n=max(a.n_rows, 64), seg=64)
    t_dot = device.timing.time(red_stats)

    from ..gpu.counters import KernelStats
    axpy = KernelStats()
    axpy.add_fma(2.0 * a.n_rows)
    axpy.read_dram(16.0 * a.n_rows, segment_bytes=1 << 16)
    axpy.write_dram(8.0 * a.n_rows, segment_bytes=1 << 16)
    t_axpy = device.timing.time(axpy)

    total = t_spmv + 2 * t_dot + 3 * t_axpy
    power = device.power.steady_power(spmv_stats)  # SpMV dominates
    return {
        "spmv_s": t_spmv,
        "dot_s": t_dot,
        "axpy_s": t_axpy,
        "iteration_s": total,
        "power_w": power,
        "energy_j": power * total,
        "gather_segment_bytes": gather_segment_bytes(a),
    }
