"""Typed task nodes and the dependency graph they form.

A :class:`TaskNode` is one unit of pipeline work — generate a dataset,
audit one workload's accuracy, evaluate one observation, resolve one
perf grid — identified by a ``key`` (the same content-key vocabulary the
result cache uses, so a node and its cached artifact name the same
thing), classified by a ``kind`` (its profiler stage and its bench
attribution group), and computed by a module-level callable.

:class:`TaskGraph` collects nodes and their dependency edges and
produces a *deterministic* topological order: ready nodes are always
drained smallest-key-first, so the order depends only on the node set
and the edges — never on insertion order.  That tie-break is what makes
graph execution reproducible (and, because every node callable is one of
the pipeline's existing deterministic functions, bit-identical to the
staged loops it replaces).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["TaskNode", "TaskGraph"]


@dataclass(frozen=True)
class TaskNode:
    """One schedulable unit of pipeline work.

    ``fn`` must be a module-level (picklable) callable — the scheduler
    ships nodes to pool workers exactly like
    :class:`~repro.perf.executor.ParallelExecutor` ships chunks.
    ``deps`` name the keys of nodes that must complete first; ``kind``
    becomes the node's ``graph/<kind>`` profiler stage and its bench
    attribution group.
    """

    key: str
    kind: str
    fn: Callable[..., Any]
    args: tuple = ()
    deps: tuple[str, ...] = ()
    label: str = ""

    @property
    def display(self) -> str:
        return self.label or self.key


class TaskGraph:
    """An insertion-ordered DAG of :class:`TaskNode`\\ s.

    ``add`` validates each node eagerly (unique key, schedulable kind,
    module-level callable); :meth:`order` validates the edge structure
    (no dangling deps, no cycles) and returns the canonical execution
    order.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, TaskNode] = {}

    # ------------------------------------------------------------ build
    def add(self, node: TaskNode) -> TaskNode:
        if node.key in self._nodes:
            raise ValueError(f"duplicate node key {node.key!r}")
        if not node.kind or "/" in node.kind:
            raise ValueError(
                f"node {node.key!r}: kind {node.kind!r} must be a "
                "non-empty name without '/' (it becomes a stage path "
                "segment)")
        if not callable(node.fn):
            raise ValueError(f"node {node.key!r}: fn is not callable")
        qualname = getattr(node.fn, "__qualname__", "")
        if "<" in qualname or "." in qualname:
            raise ValueError(
                f"node {node.key!r}: fn {qualname!r} is not a "
                "module-level function; graph nodes must pickle to pool "
                "workers (same contract as ParallelExecutor dispatch)")
        self._nodes[node.key] = node
        return node

    def extend(self, nodes: list[TaskNode]) -> None:
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------ query
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    def __iter__(self) -> Iterator[TaskNode]:
        return iter(self._nodes.values())

    def node(self, key: str) -> TaskNode:
        return self._nodes[key]

    def dependents(self) -> dict[str, list[str]]:
        """``{key: [keys that depend on it]}`` in sorted child order."""
        out: dict[str, list[str]] = {k: [] for k in self._nodes}
        for node in self._nodes.values():
            for dep in node.deps:
                out[dep].append(node.key)
        return {k: sorted(children) for k, children in out.items()}

    # --------------------------------------------------------- validate
    def order(self) -> list[str]:
        """Deterministic topological order (Kahn, smallest key first).

        Raises ``ValueError`` on a dangling dependency or a cycle.  The
        returned order depends only on the node set and edges, not on
        insertion order — the serial execution order and the pooled
        scheduler's submission tie-break both follow it.
        """
        for node in self._nodes.values():
            for dep in node.deps:
                if dep not in self._nodes:
                    raise ValueError(
                        f"node {node.key!r} depends on unknown node "
                        f"{dep!r}")
        deps_left = {k: len(set(n.deps)) for k, n in self._nodes.items()}
        dependents = self.dependents()
        ready = [k for k, n in deps_left.items() if n == 0]
        heapq.heapify(ready)
        order: list[str] = []
        while ready:
            key = heapq.heappop(ready)
            order.append(key)
            for child in dependents[key]:
                deps_left[child] -= 1
                if deps_left[child] == 0:
                    heapq.heappush(ready, child)
        if len(order) != len(self._nodes):
            stuck = sorted(k for k in self._nodes if k not in set(order))
            raise ValueError(f"dependency cycle through {stuck}")
        return order
