"""Concurrency policy: which nodes may run concurrently, per the facts.

The determinism proof engine (``repro check --facts``, docs/CHECK.md)
exports per-function purity facts to ``determinism_facts.json``: whether
a function's value is reachable from a nondeterminism source, and which
unkeyed ambient inputs (environment variables, file contents) it reads.
The scheduler consults those facts through :class:`ConcurrencyPolicy`:

* a node whose callable is **pure** with **no unkeyed ambient reads**
  may run concurrently with anything — its value depends only on its
  arguments, so execution order cannot change it;
* a node whose callable is impure or ambient-reading is **exclusive** —
  the scheduler drains in-flight work and runs it alone, in the parent
  process, in deterministic topological position (and the R009 lint
  rule flags the construction site so the impurity gets fixed rather
  than serialized forever).

The facts file is advisory: when it is missing (a fresh checkout that
has not run ``repro check --facts``) every node is assumed concurrent —
the graph builders only schedule functions the engine already proves
pure, and CI regenerates and compares the artifact on every push.
``REPRO_FACTS`` overrides the default path (the checked-in
``determinism_facts.json`` at the repo root).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

from .node import TaskNode

__all__ = ["ConcurrencyPolicy", "default_facts_path", "load_facts"]


def default_facts_path() -> Path:
    """``REPRO_FACTS`` > ``determinism_facts.json`` at the repo root."""
    env = os.environ.get("REPRO_FACTS")
    if env:
        return Path(env)
    # src/repro/graph/policy.py -> repo root is four parents up
    return Path(__file__).resolve().parents[3] / "determinism_facts.json"


def load_facts(path: str | Path | None = None) -> dict | None:
    """The parsed facts artifact, or None when absent/unreadable."""
    target = Path(path) if path is not None else default_facts_path()
    try:
        doc = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def function_fid(fn: Callable) -> str | None:
    """A callable's facts id (``<module relpath>::<qualname>``), or None
    for callables outside the ``repro`` package."""
    module = getattr(fn, "__module__", "") or ""
    qualname = getattr(fn, "__qualname__", "") or ""
    if not qualname:
        return None
    if module == "repro":
        relpath = "__init__.py"
    elif module.startswith("repro."):
        relpath = module[len("repro."):].replace(".", "/") + ".py"
    else:
        return None
    return f"{relpath}::{qualname}"


class ConcurrencyPolicy:
    """Decide per node: concurrent fan-out, or exclusive serial slot."""

    def __init__(self, facts: dict | None = None, *,
                 path: str | Path | None = None) -> None:
        if facts is None:
            facts = load_facts(path)
        self.facts = facts
        purity = (facts or {}).get("purity")
        self._purity: dict = purity if isinstance(purity, dict) else {}

    def concurrent(self, node: TaskNode) -> bool:
        """True when the node's callable is safe to run concurrently.

        Unknown callables (no facts entry — e.g. test doubles, or a
        missing facts file) default to concurrent: the scheduler's
        correctness does not depend on the policy, only the strength of
        the determinism guarantee does, and R009 flags the gaps
        statically.
        """
        fid = function_fid(node.fn)
        if fid is None:
            return True
        entry = self._purity.get(fid)
        if not isinstance(entry, dict):
            return True
        if entry.get("pure") is False:
            return False
        if entry.get("ambient"):
            return False
        return True
