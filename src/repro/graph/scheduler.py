"""The dataflow scheduler: drain ready nodes through a shared pool.

:class:`GraphScheduler` executes a :class:`~repro.graph.node.TaskGraph`
with the same contract :class:`~repro.perf.executor.ParallelExecutor`
gives staged fan-outs — deterministic results, stage attribution across
the process boundary, and fault recovery — but without stage barriers:
a ready node runs the moment its dependencies complete, so dataset
generation for workload B overlaps the accuracy audit of workload A and
the per-observation audit nodes of both.

Execution model:

* ``n_jobs <= 1`` (or one node): the serial path — nodes run in-process
  in the graph's deterministic topological order.  No pool, no fault
  injection, results bit-identical to the pooled path by construction
  (every node callable is a deterministic function of its arguments).
* pooled: ready nodes are submitted smallest-key-first as single-node
  chunks through :func:`~repro.perf.executor._run_chunk_remote` — the
  same worker entry the executor uses, so stage-registry snapshots ship
  back per node and the ``executor.worker_crash`` / ``worker_hang``
  fault sites fire under keys ``graph:<node key>:<attempt>``.
* recovery mirrors the executor: a broken pool or a hung node ends the
  *round* — completed in-flight results are harvested (never
  recomputed), the pool is rebuilt with backoff, and the survivors are
  resubmitted; after ``max_retries`` failed rounds the remaining nodes
  degrade to the in-process serial path.  Deterministic task errors
  (:class:`~repro.perf.executor.WorkerTaskError`) propagate immediately.
* nodes the :class:`~repro.graph.policy.ConcurrencyPolicy` marks
  exclusive (impure per ``determinism_facts.json``) never enter the
  pool: the scheduler drains in-flight work, then runs them in the
  parent process at their topological position.

Every node is timed worker-side under a ``graph/<kind>`` stage pair, and
the run's *overlap ratio* — summed node wall over makespan, the figure
of merit ``repro bench --check`` gates — is recorded via
:func:`~repro.perf.instrument.note_graph_run`.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Any

from ..perf.executor import (ParallelExecutor, WorkerTaskError, _env_float,
                             _env_int, _run_chunk_remote, resolve_n_jobs)
from ..perf.instrument import (merge_stage_timings, note_graph_run,
                               note_worker_count, stage)
from .node import TaskGraph, TaskNode
from .policy import ConcurrencyPolicy

__all__ = ["GraphScheduler", "GraphStats"]


def _exec_node(item: tuple) -> tuple[Any, float]:
    """Worker-side node entry: run ``fn(*args)`` under its stage pair.

    Returns ``(value, wall_seconds)`` — the wall clock is measured where
    the work ran, so overlap accounting is contention-honest (a node
    descheduled by a busier sibling reports the longer wall it actually
    took).
    """
    fn, args, kind = item
    t0 = time.perf_counter()
    with stage("graph"):
        with stage(kind):
            value = fn(*args)
    return value, time.perf_counter() - t0


@dataclass
class GraphStats:
    """Observability record of one graph execution."""

    nodes: int = 0
    workers: int = 1
    makespan_s: float = 0.0
    node_wall_s: float = 0.0
    overlap_ratio: float = 1.0
    #: pool rounds that failed (crash/hang) during the run
    failed_rounds: int = 0
    #: node submissions beyond the first attempt
    retried_nodes: int = 0
    #: completed node results carried across a pool rebuild instead of
    #: being recomputed (the property chaos CI asserts)
    reused_nodes: int = 0
    #: nodes that finished on the degrade-to-serial path
    degraded_nodes: int = 0
    #: nodes the policy ran exclusively (impure per the facts)
    exclusive_nodes: int = 0
    per_kind_wall_s: dict[str, float] = field(default_factory=dict)


class GraphScheduler:
    """Execute a :class:`TaskGraph`; results keyed by node key.

    ``executor`` donates its pool configuration (jobs, per-chunk
    timeout, retry cap, backoff) so graph and staged execution share one
    tuning surface; otherwise ``n_jobs`` resolves exactly like the
    executor's (explicit > ``REPRO_JOBS`` > CPU count) and the timeout /
    retry knobs read ``REPRO_CHUNK_TIMEOUT_S`` / ``REPRO_EXECUTOR_RETRIES``.
    """

    def __init__(self, n_jobs: int | None = None, *,
                 executor: ParallelExecutor | None = None,
                 policy: ConcurrencyPolicy | None = None,
                 chunk_timeout_s: float | None = None,
                 max_retries: int | None = None,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0) -> None:
        if executor is not None:
            self.n_jobs = executor.n_jobs
            self.chunk_timeout_s = executor.chunk_timeout_s \
                if chunk_timeout_s is None else chunk_timeout_s
            self.max_retries = executor.max_retries \
                if max_retries is None else max_retries
            self.backoff_base_s = executor.backoff_base_s
            self.backoff_cap_s = executor.backoff_cap_s
        else:
            self.n_jobs = resolve_n_jobs(n_jobs)
            self.chunk_timeout_s = chunk_timeout_s \
                if chunk_timeout_s is not None \
                else _env_float("REPRO_CHUNK_TIMEOUT_S")
            self.max_retries = max_retries if max_retries is not None \
                else _env_int("REPRO_EXECUTOR_RETRIES", 3)
            self.backoff_base_s = backoff_base_s
            self.backoff_cap_s = backoff_cap_s
        self.policy = policy if policy is not None else ConcurrencyPolicy()
        self.last_stats = GraphStats()

    # ------------------------------------------------------------- run
    def run(self, graph: TaskGraph) -> dict[str, Any]:
        """Execute every node; returns ``{key: value}``.

        Deterministic regardless of worker count, completion order, or
        injected faults: the result of each node depends only on its
        arguments, and assembly is by key.
        """
        order = graph.order()
        stats = self.last_stats = GraphStats(nodes=len(order))
        if not order:
            return {}
        workers = min(self.n_jobs, len(order))
        stats.workers = max(workers, 1)
        note_worker_count(stats.workers)
        walls: dict[str, float] = {}
        t0 = time.perf_counter()
        if workers <= 1:
            results = {key: self._run_inline(graph.node(key), walls)
                       for key in order}
        else:
            results = self._run_pooled(graph, order, workers, walls, stats)
        stats.makespan_s = time.perf_counter() - t0
        stats.node_wall_s = sum(walls.values())
        stats.overlap_ratio = (stats.node_wall_s / stats.makespan_s
                               if stats.makespan_s > 0 else 1.0)
        for key, wall in walls.items():
            kind = graph.node(key).kind
            stats.per_kind_wall_s[kind] = \
                stats.per_kind_wall_s.get(kind, 0.0) + wall
        note_graph_run(stats.nodes, stats.node_wall_s, stats.makespan_s,
                       workers=stats.workers)
        return results

    # ---------------------------------------------------------- serial
    def _run_inline(self, node: TaskNode, walls: dict[str, float]) -> Any:
        """Run one node in-process (serial path, exclusive nodes, and the
        degrade fallback).  No fault injection — mirrors the executor's
        serial path, which never self-destructs."""
        try:
            value, wall = _exec_node((node.fn, node.args, node.kind))
        except Exception as exc:
            raise WorkerTaskError(
                f"{node.display}: {type(exc).__name__}: {exc}") from exc
        walls[node.key] = wall
        return value

    # ---------------------------------------------------------- pooled
    def _payload(self, node: TaskNode, attempt: int) -> tuple:
        hang_s = 2.0 * self.chunk_timeout_s if self.chunk_timeout_s \
            else 2.0
        return (_exec_node, [(node.fn, node.args, node.kind)],
                [node.display], None, f"graph:{node.key}:{attempt}",
                hang_s)

    def _run_pooled(self, graph: TaskGraph, order: list[str],
                    workers: int, walls: dict[str, float],
                    stats: GraphStats) -> dict[str, Any]:
        dependents = graph.dependents()
        deps_left = {k: len(set(graph.node(k).deps)) for k in order}
        results: dict[str, Any] = {}
        ready: list[str] = []       # concurrent nodes, smallest key first
        exclusive: list[str] = []   # policy-serialized nodes
        attempts = {k: 0 for k in order}

        def _enqueue(key: str) -> None:
            node = graph.node(key)
            if self.policy.concurrent(node):
                heapq.heappush(ready, key)
            else:
                heapq.heappush(exclusive, key)

        def _complete(key: str, value: Any) -> None:
            results[key] = value
            for child in dependents[key]:
                deps_left[child] -= 1
                if deps_left[child] == 0:
                    _enqueue(child)

        for key in order:
            if deps_left[key] == 0:
                _enqueue(key)

        inflight: dict[Future, str] = {}
        pool: ProcessPoolExecutor | None = None
        failed_rounds = 0
        try:
            while len(results) < len(order):
                if ready and pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(workers,
                                        len(order) - len(results)))
                while ready and len(inflight) < workers:
                    key = heapq.heappop(ready)
                    stats.retried_nodes += attempts[key] > 0
                    fut = pool.submit(
                        _run_chunk_remote,
                        self._payload(graph.node(key), attempts[key]))
                    inflight[fut] = key
                if not inflight:
                    if exclusive:
                        # in-flight work drained: run the impure node
                        # alone, in the parent, at its topo position
                        key = heapq.heappop(exclusive)
                        stats.exclusive_nodes += 1
                        _complete(key, self._run_inline(graph.node(key),
                                                        walls))
                        continue
                    raise RuntimeError(  # pragma: no cover - order() bars
                        "graph stalled: no ready, in-flight, or "
                        "exclusive nodes left")
                done, _ = futures_wait(set(inflight),
                                       timeout=self.chunk_timeout_s,
                                       return_when=FIRST_COMPLETED)
                round_failed = not done
                for fut in sorted(done, key=lambda f: inflight[f]):
                    key = inflight.pop(fut)
                    exc = fut.exception()
                    if exc is None:
                        out, timings = fut.result()
                        value, wall = out[0]
                        merge_stage_timings(timings)
                        walls[key] = wall
                        _complete(key, value)
                    elif isinstance(exc, WorkerTaskError):
                        raise exc
                    else:  # broken pool / OSError: retry this node
                        round_failed = True
                        attempts[key] += 1
                        heapq.heappush(ready, key)
                if not round_failed:
                    continue
                # harvest in-flight survivors, requeue the rest, rebuild
                for fut, key in list(inflight.items()):
                    if fut.done() and not fut.cancelled() \
                            and fut.exception() is None:
                        out, timings = fut.result()
                        value, wall = out[0]
                        merge_stage_timings(timings)
                        walls[key] = wall
                        _complete(key, value)
                    else:
                        attempts[key] += 1
                        heapq.heappush(ready, key)
                inflight.clear()
                if pool is not None:
                    ParallelExecutor._kill_pool(pool)
                    pool = None
                failed_rounds += 1
                stats.failed_rounds = failed_rounds
                stats.reused_nodes = max(stats.reused_nodes, len(results))
                if failed_rounds > self.max_retries:
                    break
                time.sleep(min(
                    self.backoff_base_s * (2 ** (failed_rounds - 1)),
                    self.backoff_cap_s))
        except KeyboardInterrupt:
            if pool is not None:
                ParallelExecutor._kill_pool(pool)
            raise KeyboardInterrupt(
                "interrupted; cancelled pending graph nodes and "
                "retries") from None
        except BaseException:
            # deterministic task failure: don't hang on remaining nodes
            if pool is not None:
                ParallelExecutor._kill_pool(pool)
            raise
        if pool is not None:
            pool.shutdown(wait=True)
        if len(results) < len(order):
            # repeated pool failures: finish in-process in topo order —
            # completed node results are reused, never recomputed
            remaining = [k for k in order if k not in results]
            stats.degraded_nodes = len(remaining)
            for key in remaining:
                _complete(key, self._run_inline(graph.node(key), walls))
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphScheduler(n_jobs={self.n_jobs})"
