"""Dataflow task-graph execution over the whole pipeline.

The staged loops the harness grew up with (dataset-gen, then
sweep-execute, then audit — one barrier per stage) are replaced here by
an explicit task graph: :class:`TaskNode`\\ s keyed by the pipeline's
content-key vocabulary, collected in a :class:`TaskGraph`, and drained
by the :class:`GraphScheduler` through the same process-pool machinery
as :class:`~repro.perf.executor.ParallelExecutor` — so dataset
generation for one workload overlaps the accuracy audit of another, and
serve's batched perf queries are just another graph consumer.

Concurrency eligibility comes from the determinism proof engine's
exported facts (:mod:`repro.graph.policy`); the tie-break order is
deterministic (:meth:`TaskGraph.order`), so graph execution is
bit-identical to the staged path it replaces — asserted by
``tests/graph/`` against the recorded accuracy digests.

``REPRO_GRAPH=0`` falls every rewired pipeline back to its legacy
staged loop (the identity tests' reference path).
"""

from __future__ import annotations

import os

from .node import TaskGraph, TaskNode
from .policy import ConcurrencyPolicy, default_facts_path, load_facts
from .scheduler import GraphScheduler, GraphStats

__all__ = ["TaskGraph", "TaskNode", "ConcurrencyPolicy", "GraphScheduler",
           "GraphStats", "default_facts_path", "load_facts",
           "graph_enabled"]


def graph_enabled(mode: str | None = None) -> bool:
    """Resolve an execution mode: explicit ``mode`` > ``REPRO_GRAPH`` env.

    ``mode`` is ``"graph"`` or ``"staged"`` (None defers to the
    environment); graph execution is the default.
    """
    if mode is not None:
        if mode not in ("graph", "staged"):
            raise ValueError(
                f"mode must be 'graph' or 'staged', got {mode!r}")
        return mode == "graph"
    return os.environ.get("REPRO_GRAPH", "1").strip() != "0"
