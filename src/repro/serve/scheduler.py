"""Query scheduling: coalescing, perf batching, bounded model pool.

Three mechanisms keep the event loop responsive and the model work
minimal under concurrent load:

* **Coalescing** — every query's normalized (kind, params) hashes to a
  :func:`repro.perf.cache.content_key`; a request whose key matches an
  in-flight job awaits that job's (shielded) future instead of starting
  new work, and a completed job's answer enters a bounded served-result
  LRU.  The model is deterministic (DESIGN.md decision 4), so a
  coalesced or cached answer is bit-identical to a fresh computation —
  the same guarantee :class:`~repro.perf.cache.ResultCache` relies on.
* **Perf batching** — perf queries arriving within one batch window and
  addressing the same device list merge into a single
  :func:`~repro.serve.queries.resolve_perf_batch` submission (one
  ``ParallelExecutor`` grid evaluation over the union of workloads),
  then split back per query.
* **Bounded pool** — model work runs via ``loop.run_in_executor`` on a
  :class:`ModelPool`: a ``ProcessPoolExecutor`` of ``workers`` processes
  by default, degrading automatically (and permanently, with a
  telemetry gauge flip) to a thread pool where subprocesses are
  unavailable, e.g. sandboxes.  The event loop itself never executes
  model code.
"""

from __future__ import annotations

import asyncio
import functools
import pickle
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Mapping, Sequence

from ..perf.cache import content_key
from .admission import AdmissionController
from .protocol import ProtocolError
from .queries import resolve_perf_batch, resolve_query
from .telemetry import Telemetry

__all__ = ["ModelPool", "Scheduler", "query_key"]


def query_key(kind: str, params: Mapping[str, Any]) -> str:
    """Content address of one normalized query — the coalescing key."""
    return content_key("serve.query", kind, dict(params))


class ModelPool:
    """Bounded executor for model work, off the event loop.

    ``mode="process"`` gives true parallelism and crash isolation;
    ``mode="thread"`` is the in-process fallback (numpy releases the GIL
    for the heavy kernels).  A broken or unavailable process pool flips
    the mode to ``thread`` transparently and retries the submission.
    """

    def __init__(self, workers: int = 2, mode: str = "process") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown pool mode {mode!r}")
        self.workers = workers
        self.mode = mode
        self._executor: Executor | None = None

    def _ensure(self) -> Executor:
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-serve-model")
        return self._executor

    def _degrade(self) -> None:
        old, self._executor = self._executor, None
        self.mode = "thread"
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Execute ``fn(*args)`` in the pool and await its result."""
        loop = asyncio.get_running_loop()
        call = functools.partial(fn, *args)
        try:
            return await loop.run_in_executor(self._ensure(), call)
        except (BrokenProcessPool, OSError, pickle.PicklingError,
                TypeError) as exc:
            if self.mode != "process":
                raise
            # sandboxed / unpicklable: fall back to threads for good
            self._degrade()
            if isinstance(exc, TypeError) and "pickle" not in str(exc):
                raise
            return await loop.run_in_executor(self._ensure(), call)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


class Scheduler:
    """Coalesces, batches, and dispatches queries onto the model pool."""

    def __init__(self, pool: ModelPool, admission: AdmissionController,
                 telemetry: Telemetry, *, batch_window_s: float = 0.005,
                 inner_jobs: int = 1, results_cap: int = 1024,
                 resolver: Callable[[str, Mapping[str, Any]], Any]
                 = resolve_query,
                 perf_batch_resolver: Callable[
                     [Sequence[Mapping[str, Any]], int], list[Any]]
                 = resolve_perf_batch,
                 store: Any | None = None) -> None:
        self.pool = pool
        self.admission = admission
        self.telemetry = telemetry
        self.batch_window_s = batch_window_s
        self.inner_jobs = inner_jobs
        self.results_cap = results_cap
        self._resolver = resolver
        self._perf_batch_resolver = perf_batch_resolver
        #: optional ServedResultStore: persistent spill of the LRU
        self.store = store
        self._inflight: dict[str, asyncio.Future] = {}
        self._results: OrderedDict[str, Any] = OrderedDict()
        self._pending_perf: dict[
            tuple[str, ...],
            list[tuple[str, dict[str, Any], asyncio.Future]]] = {}
        self._flush_task: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------ lookup
    def inflight_count(self) -> int:
        return len(self._inflight)

    def peek(self, key: str) -> asyncio.Future | None:
        """The in-flight future for ``key``, if any (coalescing point)."""
        return self._inflight.get(key)

    def cached(self, key: str) -> tuple[bool, Any]:
        """Served-result LRU lookup: (found, payload)."""
        if key in self._results:
            self._results.move_to_end(key)
            return True, self._results[key]
        return False, None

    def persisted(self, key: str) -> tuple[bool, Any]:
        """Persistent-store lookup: (found, payload).

        A hit is promoted into the in-memory LRU so repeat queries stay
        on the fast path — this is how a restarted shard warms from the
        answers its previous incarnation spilled to disk.
        """
        if self.store is None:
            return False, None
        found, payload = self.store.load(key)
        if found:
            self._lru_put(key, payload)
        return found, payload

    def remember(self, key: str, payload: Any) -> None:
        self._lru_put(key, payload)
        if self.store is not None:
            self.store.store(key, payload)

    def _lru_put(self, key: str, payload: Any) -> None:
        self._results[key] = payload
        self._results.move_to_end(key)
        while len(self._results) > self.results_cap:
            self._results.popitem(last=False)

    # ---------------------------------------------------------- dispatch
    def submit(self, kind: str, params: Mapping[str, Any],
               key: str) -> asyncio.Future:
        """Start (or batch) one new model job; returns its shared future.

        The caller has already passed admission and verified no in-flight
        job shares the key.
        """
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        # a crowd whose every waiter timed out must not leak "exception
        # never retrieved" warnings
        fut.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[key] = fut
        if kind == "perf":
            self._enqueue_perf(kind, params, key, fut)
        else:
            self._spawn(self._run_single(kind, dict(params), key, fut))
        return fut

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_single(self, kind: str, params: dict[str, Any],
                          key: str, fut: asyncio.Future) -> None:
        try:
            payload = await self.pool.run(self._resolver, kind, params)
        except Exception as exc:
            self._complete(kind, key, fut, error=exc)
        else:
            self._complete(kind, key, fut, payload=payload)

    # ------------------------------------------------------ perf batching
    def _enqueue_perf(self, kind: str, params: Mapping[str, Any], key: str,
                      fut: asyncio.Future) -> None:
        group_key = tuple(params["gpus"])
        self._pending_perf.setdefault(group_key, []).append(
            (key, dict(params), fut))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = asyncio.get_running_loop().create_task(
                self._flush_after_window())
            self._tasks.add(self._flush_task)
            self._flush_task.add_done_callback(self._tasks.discard)

    async def _flush_after_window(self) -> None:
        await asyncio.sleep(self.batch_window_s)
        pending, self._pending_perf = self._pending_perf, {}
        for group in pending.values():
            self._spawn(self._run_perf_batch(group))

    async def _run_perf_batch(
            self, group: list[tuple[str, dict[str, Any], asyncio.Future]]
    ) -> None:
        self.telemetry.inc("perf_batches_total")
        if len(group) > 1:
            self.telemetry.inc("perf_batched_queries_total", len(group))
        param_sets = [params for _, params, _ in group]
        try:
            payloads = await self.pool.run(
                self._perf_batch_resolver, param_sets, self.inner_jobs)
            if len(payloads) != len(group):
                raise RuntimeError(
                    f"perf batch returned {len(payloads)} answers "
                    f"for {len(group)} queries")
        except Exception as exc:
            for key, _, fut in group:
                self._complete("perf", key, fut, error=exc)
            return
        for (key, _, fut), payload in zip(group, payloads):
            self._complete("perf", key, fut, payload=payload)

    # --------------------------------------------------------- completion
    def _complete(self, kind: str, key: str, fut: asyncio.Future,
                  payload: Any = None, error: Exception | None = None
                  ) -> None:
        self._inflight.pop(key, None)
        if error is not None:
            self.admission.record_result(kind, ok=False)
            if not fut.done():
                if isinstance(error, ProtocolError):
                    fut.set_exception(error)
                else:
                    fut.set_exception(ProtocolError(
                        "model_error",
                        f"{kind}: {type(error).__name__}: {error}"))
            return
        self.admission.record_result(kind, ok=True)
        self.remember(key, payload)
        if not fut.done():
            fut.set_result(payload)

    async def drain(self, timeout_s: float = 5.0) -> None:
        """Let in-flight work finish (bounded); then drop bookkeeping."""
        tasks = [t for t in self._tasks if not t.done()]
        if tasks:
            await asyncio.wait(tasks, timeout=timeout_s)
        for task in self._tasks:
            task.cancel()
        self._pending_perf.clear()
        self._inflight.clear()
