"""Service observability: trace spans, rolling histograms, counters.

Every request carries a :class:`Trace` through the pipeline; its phases
(``queue`` — admission and batch-window wait, ``resolve`` — key
derivation and scheduling, ``model`` — pool execution, ``serialize`` —
response encoding) are stamped into the response and accumulated into the
service-wide :class:`Telemetry` registry.  Latencies feed per-kind
rolling histograms (bounded windows, so a long-lived server's memory and
percentile cost stay constant) and everything is exported as one JSON
snapshot — the ``metrics`` query kind, this service's ``/metrics``.
"""

from __future__ import annotations

import math
import threading
import time
from collections import defaultdict, deque
from typing import Any, Callable

__all__ = ["RollingHistogram", "Telemetry", "Trace"]

#: the pipeline phases every request is traced through, in order
PHASES = ("queue", "resolve", "model", "serialize")


class Trace:
    """Wall-clock spans of one request's trip through the pipeline."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self._clock = clock
        self._t0 = clock()
        self.spans: dict[str, float] = {}

    class _Span:
        def __init__(self, trace: "Trace", name: str) -> None:
            self._trace, self._name = trace, name

        def __enter__(self) -> "Trace._Span":
            self._start = self._trace._clock()
            return self

        def __exit__(self, *exc: object) -> None:
            self._trace.add(self._name,
                            self._trace._clock() - self._start)

    def phase(self, name: str) -> "Trace._Span":
        """Context manager timing one phase into the trace."""
        return Trace._Span(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.spans[name] = self.spans.get(name, 0.0) + seconds

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    def to_dict(self) -> dict[str, float]:
        """Wire form: ``{phase}_s`` spans plus the total."""
        out = {f"{k}_s": v for k, v in self.spans.items()}
        out["total_s"] = self.elapsed_s
        return out


class RollingHistogram:
    """Bounded latency window with nearest-rank percentiles."""

    def __init__(self, window: int = 2048) -> None:
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0  # lifetime observations, beyond the window

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self.count += 1

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the current window (0 if empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(math.ceil(q * len(ordered)), 1)
        return ordered[rank - 1]

    def summary(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "window": len(self._samples),
            "p50_s": self.percentile(0.50),
            "p95_s": self.percentile(0.95),
            "p99_s": self.percentile(0.99),
            "max_s": max(self._samples) if self._samples else 0.0,
        }


class Telemetry:
    """Thread-safe counters, gauges, and per-kind latency histograms.

    The asyncio pipeline mutates it from the event loop, the load
    generator and pool callbacks from other threads, so every mutation
    takes the (uncontended, tiny-critical-section) lock.
    """

    def __init__(self, histogram_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._window = histogram_window
        self._counters: defaultdict[str, int] = defaultdict(int)
        self._gauges: dict[str, Any] = {}
        self._latency: dict[str, RollingHistogram] = {}
        self._spans: dict[str, RollingHistogram] = {}
        self._started = time.time()

    # ------------------------------------------------------------- write
    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def gauge(self, name: str, value: Any) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe_latency(self, kind: str, seconds: float) -> None:
        with self._lock:
            hist = self._latency.get(kind)
            if hist is None:
                hist = self._latency[kind] = RollingHistogram(self._window)
            hist.observe(seconds)

    def observe_trace(self, trace: Trace) -> None:
        """Fold one request's phase spans into the per-phase histograms."""
        with self._lock:
            for name, seconds in trace.spans.items():
                hist = self._spans.get(name)
                if hist is None:
                    hist = self._spans[name] = RollingHistogram(self._window)
                hist.observe(seconds)

    # -------------------------------------------------------------- read
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """The ``metrics`` query answer: everything, JSON-able."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            latency = {k: h.summary()
                       for k, h in sorted(self._latency.items())}
            spans = {k: h.summary() for k, h in sorted(self._spans.items())}
        requests = counters.get("requests_total", 0)
        reused = (counters.get("coalesced_total", 0)
                  + counters.get("cache_hits_total", 0)
                  + counters.get("stale_served_total", 0))
        return {
            "uptime_s": time.time() - self._started,
            "counters": counters,
            "gauges": gauges,
            #: fraction of answers served without a fresh model run
            "reuse_rate": (reused / requests) if requests else 0.0,
            "latency_by_kind": latency,
            "phase_spans": spans,
        }
