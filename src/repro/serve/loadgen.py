"""Closed-loop load generator for the characterization service.

``repro loadgen`` drives N blocking clients (threads, one TCP connection
each) against a running server for a fixed duration.  Each client loops:
pick a query from the mix (deterministic per-client LCG, the repo's
fixed-seed discipline), send it, record the latency and how it was
served.  The run summary reports throughput, latency percentiles, the
reuse rate (answers served by coalescing, the served-result cache, or a
stale degrade — the "no new model work" fraction), and every protocol
error observed; the CLI turns errors or a p99 bound violation into a
non-zero exit so CI can gate on it.

``--self-host`` boots the full TCP service on an ephemeral port inside
this process (event loop on a background thread) and aims the clients at
it — the zero-setup smoke mode CI uses.

``--chaos RATE`` layers the fault plan on top (docs/ROBUSTNESS.md):
connection drops, worker crashes, and cache corruption all fire at RATE
while ``verify`` digests every served answer against the in-process
deterministic reference — the chaos-smoke gate is *zero wrong answers
and a bounded retry rate* under sustained injected failure.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from typing import Any, Mapping, Sequence

from .client import ServeClient
from .protocol import ProtocolError, normalize_params
from .server import CharacterizationService, ServeConfig

__all__ = ["DEFAULT_MIX", "HostedService", "format_loadgen_report",
           "loadgen_failures", "reference_digests", "run_loadgen"]

#: the repeated-query workload: the questions a practitioner actually
#: asks before an MMU port, all answerable from the analytic model
DEFAULT_MIX: tuple[tuple[str, dict[str, Any]], ...] = (
    ("quadrant", {"workload": "gemv"}),
    ("quadrant", {"workload": "spmv"}),
    ("perf", {"workloads": ["gemv"], "gpus": ["A100"]}),
    ("perf", {"workloads": ["scan"], "gpus": ["H200"]}),
    ("roofline", {"workloads": ["reduction"], "gpu": "H200"}),
    ("edp", {"workload": "reduction", "gpu": "H200"}),
    ("whatif", {"base": "B200", "scales": {"tc_fp64": 2.0},
                "workloads": ["gemm"]}),
)


class HostedService:
    """A full TCP service on a background thread (ephemeral port).

    The event loop, service, pool, and scheduler all live on the thread;
    ``address`` is valid once the context manager enters.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None \
            else ServeConfig(port=0, pool_mode="thread")
        self.service: CharacterizationService | None = None
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self.service = CharacterizationService(self.config)
            self.address = loop.run_until_complete(self.service.start_tcp())
        except BaseException as exc:  # surface bind failures to the caller
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.stop())
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-host")
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        assert self.address is not None, "service failed to start"
        return self.address

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def kill(self) -> None:
        """Abrupt stop: reset every connection without draining.

        The in-process stand-in for ``kill -9`` on a shard — clients
        (and the fabric router) see hard connection resets mid-query,
        which is exactly what failover drills must absorb.
        """
        if self._loop is not None and self._loop.is_running() \
                and self.service is not None:
            fut = asyncio.run_coroutine_threadsafe(self.service.abort(),
                                                   self._loop)
            try:
                fut.result(timeout=10)
            except Exception:  # pragma: no cover - loop already dying
                pass
        self.stop()

    def __enter__(self) -> "HostedService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


class _ClientStats:
    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.served_by: dict[str, int] = {}
        self.kinds: dict[str, int] = {}
        self.shards: dict[str, int] = {}
        self.errors: list[str] = []
        self.retries = 0
        self.wrong_answers = 0


def _answer_digest(result: Any) -> str:
    """Canonical digest of one query answer (tuples == lists in JSON)."""
    return hashlib.sha256(
        json.dumps(result, sort_keys=True,
                   separators=(",", ":")).encode()).hexdigest()


def reference_digests(mix: Sequence[tuple[str, Mapping[str, Any]]]
                      ) -> dict[int, str]:
    """Ground-truth answer digest per mix entry, computed in-process.

    The model is deterministic, so the served answer must digest to
    exactly this — under any amount of injected chaos.  ``metrics`` (and
    other non-model kinds) have no fixed answer and are skipped.
    """
    from .queries import resolve_query

    digests: dict[int, str] = {}
    for i, (kind, params) in enumerate(mix):
        if kind in ("metrics", "ping"):
            continue
        digests[i] = _answer_digest(
            resolve_query(kind, normalize_params(kind, params)))
    return digests


def _lcg(seed: int):
    """The repo's deterministic LCG discipline, as a picker stream."""
    state = (seed * 2654435761 + 1013904223) & 0xFFFFFFFF
    while True:
        state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
        yield state >> 8


def _client_loop(index: int, host: str, port: int, t_end: float,
                 mix: Sequence[tuple[str, Mapping[str, Any]]],
                 deadline_s: float | None, fresh: bool,
                 barrier: threading.Barrier, out: _ClientStats,
                 retries: int, expected: Mapping[int, str] | None,
                 token: str | None = None) -> None:
    picks = _lcg(index)
    try:
        barrier.wait(timeout=30)
    except threading.BrokenBarrierError:  # pragma: no cover - peer died
        return
    client = ServeClient(host, port, retries=retries, token=token)
    try:
        with client:
            while time.monotonic() < t_end:
                pick = next(picks) % len(mix)
                kind, params = mix[pick]
                t0 = time.perf_counter()
                try:
                    resp = client.query(kind, params,
                                        deadline_s=deadline_s, fresh=fresh)
                except ProtocolError as exc:
                    out.errors.append(f"{kind}: [{exc.code}] {exc.message}")
                    return
                out.latencies.append(time.perf_counter() - t0)
                out.kinds[kind] = out.kinds.get(kind, 0) + 1
                if resp.shard_id is not None:
                    out.shards[resp.shard_id] = \
                        out.shards.get(resp.shard_id, 0) + 1
                if resp.ok:
                    out.served_by[resp.served_by] = \
                        out.served_by.get(resp.served_by, 0) + 1
                    if expected is not None and pick in expected \
                            and _answer_digest(resp.result) != expected[pick]:
                        out.wrong_answers += 1
                        out.errors.append(
                            f"{kind}: WRONG ANSWER (digest mismatch vs "
                            f"the in-process reference)")
                else:
                    err = resp.error or {}
                    out.errors.append(
                        f"{kind}: [{err.get('code', '?')}] "
                        f"{err.get('message', '')}")
    except (OSError, ProtocolError) as exc:
        out.errors.append(f"client {index}: {exc}")
    finally:
        out.retries = client.retry_count


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = max(int(q * len(ordered) + 0.999999), 1)
    return ordered[min(rank, len(ordered)) - 1]


def run_loadgen(host: str, port: int, *, clients: int = 8,
                duration_s: float = 10.0,
                mix: Sequence[tuple[str, Mapping[str, Any]]] = DEFAULT_MIX,
                deadline_s: float | None = None,
                fresh: bool = False, verify: bool = False,
                client_retries: int = 2,
                token: str | None = None) -> dict[str, Any]:
    """Drive the server and summarize the run (see module docstring).

    ``verify`` digests every OK answer against an in-process reference
    computation — the chaos gate's "zero wrong answers" check.
    ``client_retries`` is each client's dropped-connection retry budget
    (raise it when driving a server with ``serve.conn_drop`` injected).
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    expected = reference_digests(mix) if verify else None
    stats = [_ClientStats() for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)
    t_end = time.monotonic() + duration_s
    threads = [
        threading.Thread(target=_client_loop,
                         args=(i, host, port, t_end, mix, deadline_s,
                               fresh, barrier, stats[i], client_retries,
                               expected, token),
                         name=f"repro-loadgen-{i}", daemon=True)
        for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait(timeout=30)
    t0 = time.monotonic()
    for t in threads:
        t.join(timeout=duration_s + 60)
    wall = time.monotonic() - t0

    latencies = sorted(x for s in stats for x in s.latencies)
    errors = [e for s in stats for e in s.errors]
    served_by: dict[str, int] = {}
    kinds: dict[str, int] = {}
    shards: dict[str, int] = {}
    for s in stats:
        for k, v in s.served_by.items():
            served_by[k] = served_by.get(k, 0) + v
        for k, v in s.kinds.items():
            kinds[k] = kinds.get(k, 0) + v
        for k, v in s.shards.items():
            shards[k] = shards.get(k, 0) + v
    total = len(latencies)
    reused = sum(served_by.get(k, 0)
                 for k in ("cache", "coalesced", "stale"))
    retries = sum(s.retries for s in stats)
    wrong = sum(s.wrong_answers for s in stats)

    metrics: dict[str, Any] | None = None
    try:
        with ServeClient(host, port, token=token) as client:
            resp = client.query("metrics")
            if resp.ok:
                metrics = resp.result
    except (OSError, ProtocolError):  # pragma: no cover - server gone
        pass

    return {
        "clients": clients,
        "duration_s": wall,
        "requests": total,
        "errors": len(errors),
        "error_samples": errors[:8],
        "throughput_qps": (total / wall) if wall > 0 else 0.0,
        "reuse_rate": (reused / total) if total else 0.0,
        "retries": retries,
        "retry_rate": (retries / total) if total else 0.0,
        "wrong_answers": wrong,
        "verified": verify,
        "served_by": dict(sorted(served_by.items())),
        "kinds": dict(sorted(kinds.items())),
        "shards": dict(sorted(shards.items())),
        "latency": {
            "p50_s": _percentile(latencies, 0.50),
            "p95_s": _percentile(latencies, 0.95),
            "p99_s": _percentile(latencies, 0.99),
            "max_s": latencies[-1] if latencies else 0.0,
        },
        "server_metrics": metrics,
    }


def loadgen_failures(summary: Mapping[str, Any],
                     p99_max_s: float | None = None,
                     min_reuse_rate: float | None = None,
                     max_retry_rate: float | None = None) -> list[str]:
    """The CI gate: reasons this run should fail the build."""
    failures = []
    if summary["requests"] == 0:
        failures.append("no requests completed")
    if summary.get("wrong_answers"):
        failures.append(
            f"{summary['wrong_answers']} WRONG answer(s): a served result "
            f"diverged from the deterministic reference")
    if summary["errors"]:
        failures.append(
            f"{summary['errors']} protocol error(s), e.g. "
            f"{summary['error_samples'][:1]}")
    if max_retry_rate is not None \
            and summary.get("retry_rate", 0.0) > max_retry_rate:
        failures.append(
            f"retry rate {summary['retry_rate']:.2%} exceeds bound "
            f"{max_retry_rate:.2%} (recovery is thrashing)")
    if p99_max_s is not None \
            and summary["latency"]["p99_s"] > p99_max_s:
        failures.append(
            f"p99 {summary['latency']['p99_s']:.3f}s exceeds bound "
            f"{p99_max_s:.3f}s")
    if min_reuse_rate is not None \
            and summary["reuse_rate"] < min_reuse_rate:
        failures.append(
            f"reuse rate {summary['reuse_rate']:.2%} below "
            f"{min_reuse_rate:.2%}")
    return failures


def format_loadgen_report(summary: Mapping[str, Any]) -> str:
    """Human-readable run summary for the CLI."""
    from ..harness.report import format_table

    lat = summary["latency"]
    rows = [
        ["clients", summary["clients"]],
        ["duration", f"{summary['duration_s']:.2f} s"],
        ["requests", summary["requests"]],
        ["errors", summary["errors"]],
        ["throughput", f"{summary['throughput_qps']:.1f} q/s"],
        ["reuse rate", f"{summary['reuse_rate']:.2%}"],
        ["conn retries", f"{summary.get('retries', 0)} "
                         f"({summary.get('retry_rate', 0.0):.2%})"],
        ["verified answers",
         ("yes, %d wrong" % summary.get("wrong_answers", 0))
         if summary.get("verified") else "off"],
        ["p50 / p95 / p99",
         f"{lat['p50_s'] * 1e3:.2f} / {lat['p95_s'] * 1e3:.2f} / "
         f"{lat['p99_s'] * 1e3:.2f} ms"],
        ["max latency", f"{lat['max_s'] * 1e3:.2f} ms"],
    ]
    for served, count in summary["served_by"].items():
        rows.append([f"served by {served}", count])
    for shard, count in summary.get("shards", {}).items():
        rows.append([f"shard {shard}", count])
    return format_table(["metric", "value"], rows,
                        title="loadgen: closed-loop run summary")
