"""The asyncio characterization-query service and its TCP front end.

:class:`CharacterizationService` is transport-free: ``handle`` takes a
decoded :class:`~repro.serve.protocol.Request` through the pipeline
(admission -> coalesce/cache -> model pool -> response) and
``handle_line`` wraps it for the JSON-lines wire.  The stdlib-only TCP
server (`asyncio.start_server`) feeds lines to ``handle_line``, one
connection per client, many concurrent clients per event loop.

Degradation semantics (see docs/SERVE.md): a request that passes the
rate gate but finds its query kind's circuit breaker open — or that
overruns its deadline — is answered from the last-good served-result
store when possible, with ``stale: true`` and ``served_by: "stale"``;
only when no previous answer exists does the client see a
``circuit_open`` / ``deadline_exceeded`` error.  A client timeout never
cancels the underlying job (the shared future is shielded), so the job
still completes and refreshes the store for the next request.
"""

from __future__ import annotations

import asyncio
import socket
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .. import faults
from .admission import AdmissionController
from .protocol import (
    ProtocolError,
    Request,
    Response,
    decode_request,
    encode_response,
    is_handshake_line,
)
from .scheduler import ModelPool, Scheduler, query_key
from .telemetry import Telemetry, Trace

__all__ = ["CharacterizationService", "ServeConfig",
           "require_loopback_or_token", "run_query_locally"]

#: hosts the server may bind without authentication
_LOOPBACK_HOSTS = frozenset({"localhost", "::1"})


def require_loopback_or_token(host: str, has_token: bool,
                              what: str = "serve") -> None:
    """Refuse to bind a non-loopback interface without authentication.

    Binding ``0.0.0.0`` (or any routable address) exposes the model to
    the network; the fabric's contract is that such a listener always
    demands the shared-token handshake first.  Loopback binds stay
    token-optional for local development.
    """
    if has_token:
        return
    if host in _LOOPBACK_HOSTS or host.startswith("127."):
        return
    raise ValueError(
        f"refusing to bind {what} on non-loopback {host!r} without "
        f"authentication; pass --token (or REPRO_SERVE_TOKEN)")


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 7341
    #: model pool size and kind ("process" | "thread")
    workers: int = 2
    pool_mode: str = "process"
    #: ParallelExecutor jobs inside one (possibly batched) perf grid
    inner_jobs: int = 1
    max_queue_depth: int = 64
    #: global queries/second (None disables rate limiting)
    rate: float | None = None
    burst: float | None = None
    default_deadline_s: float = 30.0
    batch_window_s: float = 0.005
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 10.0
    results_cap: int = 1024
    histogram_window: int = 2048
    #: fabric identity stamped on every response (None outside a fabric)
    shard_id: str | None = None
    #: shared handshake secret; required before binding non-loopback
    token: str | None = None
    #: per-token queries/second after the handshake (None disables)
    auth_rate: float | None = None
    auth_burst: float | None = None
    #: spill the served-result LRU through ResultCache (warm restarts)
    persist: bool = False
    #: persistent store directory (None = the default cache dir)
    store_dir: str | None = None


@dataclass
class _ServiceParts:
    telemetry: Telemetry
    admission: AdmissionController
    pool: ModelPool
    scheduler: Scheduler
    store: Any


def _build_parts(config: ServeConfig,
                 resolver: Callable[..., Any] | None,
                 perf_batch_resolver: Callable[..., Any] | None,
                 clock: Callable[[], float] | None) -> _ServiceParts:
    telemetry = Telemetry(histogram_window=config.histogram_window)
    admission_kwargs: dict[str, Any] = dict(
        max_queue_depth=config.max_queue_depth,
        rate=config.rate, burst=config.burst,
        breaker_threshold=config.breaker_threshold,
        breaker_cooldown_s=config.breaker_cooldown_s,
        telemetry=telemetry)
    if clock is not None:
        admission_kwargs["clock"] = clock
    admission = AdmissionController(**admission_kwargs)
    pool = ModelPool(workers=config.workers, mode=config.pool_mode)
    scheduler_kwargs: dict[str, Any] = dict(
        batch_window_s=config.batch_window_s,
        inner_jobs=config.inner_jobs,
        results_cap=config.results_cap)
    if resolver is not None:
        scheduler_kwargs["resolver"] = resolver
    if perf_batch_resolver is not None:
        scheduler_kwargs["perf_batch_resolver"] = perf_batch_resolver
    store = None
    if config.persist:
        # imported here, not at module top: fabric modules import serve
        # submodules, so a top-level import would be circular
        from ..fabric.store import ServedResultStore
        store = ServedResultStore(config.store_dir)
        scheduler_kwargs["store"] = store
    scheduler = Scheduler(pool, admission, telemetry, **scheduler_kwargs)
    return _ServiceParts(telemetry, admission, pool, scheduler, store)


class CharacterizationService:
    """The query service: pipeline + optional TCP listener."""

    def __init__(self, config: ServeConfig | None = None, *,
                 resolver: Callable[..., Any] | None = None,
                 perf_batch_resolver: Callable[..., Any] | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        parts = _build_parts(self.config, resolver, perf_batch_resolver,
                             clock)
        self.telemetry = parts.telemetry
        self.admission = parts.admission
        self.pool = parts.pool
        self.scheduler = parts.scheduler
        self.store = parts.store
        self.auth = None
        if self.config.token:
            from ..fabric.auth import Authenticator  # avoid import cycle
            self.auth = Authenticator(self.config.token,
                                      rate=self.config.auth_rate,
                                      burst=self.config.auth_burst)
        self._tcp_server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        if self.config.shard_id is not None:
            self.telemetry.gauge("shard_id", self.config.shard_id)

    # ------------------------------------------------------------ pipeline
    async def handle(self, req: Request,
                     trace: Trace | None = None) -> Response:
        """One request through admission, scheduling, and the model."""
        trace = trace if trace is not None else Trace()
        self.telemetry.inc("requests_total")
        self.telemetry.inc(f"requests_{req.kind}_total")
        try:
            resp = await self._pipeline(req, trace)
        except ProtocolError as exc:
            resp = self._error(req, exc.code, exc.message, trace)
        except Exception as exc:  # pragma: no cover - defensive
            resp = self._error(req, "internal",
                               f"{type(exc).__name__}: {exc}", trace)
        self.telemetry.observe_latency(req.kind, trace.elapsed_s)
        self.telemetry.observe_trace(trace)
        if not resp.ok:
            self.telemetry.inc("errors_total")
        return resp

    async def _pipeline(self, req: Request, trace: Trace) -> Response:
        if req.kind == "ping":
            return self._ok(req, "pong", "model", trace)
        if req.kind == "metrics":
            return self._ok(req, self.telemetry.snapshot(), "model", trace)

        with trace.phase("resolve"):
            key = query_key(req.kind, req.params)

        if not req.fresh:
            hit, payload = self.scheduler.cached(key)
            if hit:
                self.telemetry.inc("cache_hits_total")
                return self._ok(req, payload, "cache", trace)
            hit, payload = self.scheduler.persisted(key)
            if hit:
                # a previous process's answer, spilled through disk:
                # bit-identical by the determinism contract
                self.telemetry.inc("store_hits_total")
                return self._ok(req, payload, "store", trace)

        with trace.phase("queue"):
            if not self.admission.try_rate():
                raise ProtocolError("rate_limited",
                                    "global rate limit exceeded")
            if not self.admission.allow_model(req.kind):
                return self._degraded(req, key, trace, "circuit_open",
                                      f"{req.kind} circuit breaker is open")
            fut = self.scheduler.peek(key)
            if fut is not None:
                served_by = "coalesced"
                self.telemetry.inc("coalesced_total")
            else:
                if not self.admission.try_depth(
                        self.scheduler.inflight_count()):
                    raise ProtocolError(
                        "overloaded",
                        f"admission queue full "
                        f"({self.admission.max_queue_depth} in flight)")
                served_by = "model"
                fut = self.scheduler.submit(req.kind, req.params, key)

        deadline = req.deadline_s if req.deadline_s is not None \
            else self.config.default_deadline_s
        with trace.phase("model"):
            try:
                payload = await asyncio.wait_for(asyncio.shield(fut),
                                                 deadline)
            except asyncio.TimeoutError:
                self.telemetry.inc("deadline_exceeded_total")
                if served_by == "model":
                    # the kind is over deadline: that is breaker signal,
                    # counted once per job, not per coalesced waiter
                    self.admission.record_result(req.kind, ok=False)
                return self._degraded(
                    req, key, trace, "deadline_exceeded",
                    f"no answer within {deadline:.3f}s "
                    "(the job continues; retry may hit its cached result)")
        return self._ok(req, payload, served_by, trace)

    # ------------------------------------------------------------ replies
    def _degraded(self, req: Request, key: str, trace: Trace,
                  code: str, message: str) -> Response:
        """Last-good answer marked stale, else the given error."""
        hit, payload = self.scheduler.cached(key)
        if not hit:
            hit, payload = self.scheduler.persisted(key)
        if hit:
            self.telemetry.inc("stale_served_total")
            return Response(id=req.id, ok=True, result=payload,
                            served_by="stale", stale=True,
                            trace=trace.to_dict(),
                            shard_id=self.config.shard_id)
        raise ProtocolError(code, message)

    def _ok(self, req: Request, payload: Any, served_by: str,
            trace: Trace) -> Response:
        return Response(id=req.id, ok=True, result=payload,
                        served_by=served_by, trace=trace.to_dict(),
                        shard_id=self.config.shard_id)

    def _error(self, req: Request, code: str, message: str,
               trace: Trace) -> Response:
        return Response(id=req.id, ok=False,
                        error={"code": code, "message": message},
                        served_by="model", trace=trace.to_dict(),
                        shard_id=self.config.shard_id)

    # ---------------------------------------------------------- wire layer
    async def handle_line(self, line: str) -> str:
        """Decode one request line, serve it, encode the response line."""
        trace = Trace()
        try:
            req = decode_request(line)
        except ProtocolError as exc:
            self.telemetry.inc("requests_total")
            self.telemetry.inc("errors_total")
            resp = Response(id=None, ok=False,
                            error={"code": exc.code, "message": exc.message},
                            trace=trace.to_dict(),
                            shard_id=self.config.shard_id)
            return encode_response(resp)
        resp = await self.handle(req, trace)
        with trace.phase("serialize"):
            encoded = encode_response(resp)
        # the serialize span cannot appear inside the line it times; it
        # is folded into the phase histograms instead (docs/SERVE.md)
        self.telemetry.observe_trace(
            _span_only(trace, "serialize"))
        return encoded

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.telemetry.inc("connections_total")
        self._writers.add(writer)
        authed: str | None = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # an oversized line (no newline within the stream
                    # limit) cannot be parsed or resynchronized past:
                    # refuse this connection; the accept loop lives on
                    self.telemetry.inc("oversized_lines_total")
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # EOF cut the line mid-frame (the peer died while
                    # writing): a fragment is not a request — discard it
                    self.telemetry.inc("truncated_lines_total")
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                if self.auth is not None and authed is None:
                    # token-protected: the first line must be a valid
                    # handshake — refused before any query parsing
                    from ..fabric.auth import auth_gate
                    reply, authed = auth_gate(self.auth, text,
                                              self.config.shard_id)
                    writer.write(reply.encode())
                    await writer.drain()
                    if authed is None:
                        self.telemetry.inc("auth_refused_total")
                        break
                    self.telemetry.inc("auth_ok_total")
                    continue
                if self.auth is None and is_handshake_line(text):
                    # tokenless server: politely confirm a handshake so
                    # fabric clients configured with a token still work
                    from ..fabric.auth import handshake_ok_line
                    writer.write(handshake_ok_line(
                        self.config.shard_id).encode())
                    await writer.drain()
                    continue
                if self.auth is not None \
                        and not self.auth.try_rate(authed):
                    self.telemetry.inc("token_rate_limited_total")
                    writer.write(encode_response(Response(
                        id=None, ok=False,
                        error={"code": "rate_limited",
                               "message": "per-token rate limit "
                                          "exceeded"},
                        shard_id=self.config.shard_id)).encode())
                    await writer.drain()
                    continue
                if faults.site("serve.conn_drop"):
                    # injected drop: close without replying — the client's
                    # retry re-asks an idempotent, content-keyed query
                    self.telemetry.inc("injected_conn_drops_total")
                    break
                writer.write((await self.handle_line(text)).encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # service shutdown: just close the connection
        finally:
            self._writers.discard(writer)
            # shutdown() before close(): a forked model-pool worker may
            # hold a duplicate of this fd (the pool is created lazily,
            # after connections exist), and close() alone would leave the
            # connection open until every copy dies — the client would
            # hang to its socket timeout instead of seeing EOF.
            # shutdown() acts on the connection itself, so the FIN goes
            # out regardless of duplicated descriptors.
            try:
                sock = writer.get_extra_info("socket")
                if sock is not None:
                    sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already disconnected
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------ lifecycle
    async def start_tcp(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        require_loopback_or_token(self.config.host, self.auth is not None)
        self._tcp_server = await asyncio.start_server(
            self._client_connected, self.config.host, self.config.port)
        sock = self._tcp_server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.telemetry.gauge("listen", f"{host}:{port}")
        self.telemetry.gauge("pool_mode", self.pool.mode)
        self.telemetry.gauge("pool_workers", self.pool.workers)
        return host, port

    async def stop(self) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        await self.scheduler.drain()
        self.pool.shutdown()

    async def abort(self) -> None:
        """Abrupt shutdown: reset every connection, skip the drain.

        The failover drill's stand-in for a killed shard process —
        clients see connection resets mid-query, exactly what the
        router's replay path must absorb.
        """
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self.pool.shutdown()

    async def serve_forever(self) -> None:
        """``repro serve``: run until cancelled."""
        assert self._tcp_server is not None, "call start_tcp() first"
        try:
            await self._tcp_server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()


def _span_only(trace: Trace, name: str) -> Trace:
    """A trace view holding one span (for per-phase histogram folding)."""
    view = Trace(clock=trace._clock)
    if name in trace.spans:
        view.spans[name] = trace.spans[name]
    return view


def run_query_locally(kind: str, params: Mapping[str, Any] | None = None,
                      *, config: ServeConfig | None = None,
                      deadline_s: float | None = None,
                      fresh: bool = False) -> Response:
    """``repro query --local``: one request through an in-process service.

    Spins up the full pipeline (no TCP), serves one query, and tears it
    down — the reference path the bit-identity tests compare the wire
    path against.
    """
    from .protocol import normalize_params

    if config is None:
        config = ServeConfig(pool_mode="thread", workers=1)
    req = Request(kind=kind, params=normalize_params(kind, params),
                  id="local", deadline_s=deadline_s, fresh=fresh)

    async def _run() -> Response:
        service = CharacterizationService(config)
        try:
            return await service.handle(req)
        finally:
            await service.stop()

    return asyncio.run(_run())
