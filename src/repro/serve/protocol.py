"""JSON-lines wire protocol of the characterization-query service.

One request per line, one response per line.  A request is::

    {"id": "q1", "kind": "perf", "params": {...},
     "deadline_s": 5.0, "fresh": false}

``kind`` selects a typed query (see :data:`QUERY_KINDS`); ``params`` are
validated and *normalized* here — defaults filled in, unknown keys
rejected — so that two requests meaning the same thing have the same
canonical params and therefore the same coalescing key
(:func:`repro.perf.cache.content_key` over the normalized form).
``fresh: true`` bypasses the served-result cache (the model still runs
deterministically, so the answer is bit-identical either way).

A response echoes the request id::

    {"id": "q1", "ok": true, "result": ..., "served_by": "model",
     "stale": false, "trace": {"queue_s": ..., "resolve_s": ...,
     "model_s": ...}}

or, on failure, ``ok: false`` with ``error: {code, message}`` where
``code`` is one of :data:`ERROR_CODES`.  ``served_by`` says how the
answer was produced (``model`` / ``coalesced`` / ``cache`` / ``stale``);
``stale: true`` marks a degraded answer served from the last-good store
while the model path is failing or over deadline.

Floats survive the wire bit-exactly: ``json`` serializes with
``repr``-shortest round-tripping, so a served number equals the directly
computed one — the bit-identity contract the test suite asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..gpu.specs import ALL_GPUS, get_gpu
from ..kernels.base import workload_names

__all__ = [
    "ERROR_CODES",
    "HANDSHAKE_MAX_BYTES",
    "HANDSHAKE_VERSION",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUERY_KINDS",
    "Request",
    "Response",
    "decode_handshake",
    "decode_request",
    "decode_response",
    "encode_handshake",
    "encode_request",
    "encode_response",
    "is_handshake_line",
    "normalize_params",
]

PROTOCOL_VERSION = 1

#: version of the authentication handshake frame (independent of the
#: query protocol so auth can evolve without invalidating query clients)
HANDSHAKE_VERSION = 1

#: hard cap on a handshake line — tokens are short; anything longer is
#: refused before being inspected further
HANDSHAKE_MAX_BYTES = 4096

#: every error code a response may carry
ERROR_CODES = frozenset({
    "bad_request",       # unparseable line / malformed envelope
    "unknown_kind",      # kind not in QUERY_KINDS
    "bad_params",        # params failed validation
    "overloaded",        # admission queue-depth cap hit
    "rate_limited",      # token bucket empty
    "deadline_exceeded", # per-query deadline passed, no degraded answer
    "circuit_open",      # breaker open and no stale answer to degrade to
    "model_error",       # resolver raised
    "internal",          # anything else server-side
    "auth_required",     # token-protected server: no handshake yet
    "bad_token",         # handshake carried a wrong/ill-formed token
    "shard_unavailable", # router: no shard could answer (all owners down)
    "conn_dropped",      # client-side: the connection died mid-query
                         # (never sent by the server; raised locally by
                         # ServeClient, and retried when retries remain)
})

_DEFAULT_GPUS = [g.name for g in ALL_GPUS]


class ProtocolError(Exception):
    """A request that cannot be served, with its wire error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


# ---------------------------------------------------------------- params

def _require(params: Mapping[str, Any], allowed: set[str], kind: str) -> None:
    unknown = set(params) - allowed
    if unknown:
        raise ProtocolError(
            "bad_params",
            f"{kind}: unknown parameter(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}")


def _norm_workload(name: Any, kind: str) -> str:
    known = workload_names()
    if not isinstance(name, str) or name not in known:
        raise ProtocolError(
            "bad_params",
            f"{kind}: workload must be one of {known}, got {name!r}")
    return name


def _norm_workload_list(names: Any, kind: str) -> list[str] | None:
    if names is None:
        return None
    if not isinstance(names, (list, tuple)) or not names:
        raise ProtocolError(
            "bad_params", f"{kind}: workloads must be a non-empty list")
    return [_norm_workload(n, kind) for n in names]


def _norm_gpu(name: Any, kind: str) -> str:
    if not isinstance(name, str):
        raise ProtocolError("bad_params", f"{kind}: gpu must be a string")
    try:
        return get_gpu(name).name
    except (KeyError, ValueError) as exc:
        raise ProtocolError(
            "bad_params",
            f"{kind}: unknown gpu {name!r} (known: {_DEFAULT_GPUS})"
        ) from exc


def _norm_gpu_list(names: Any, kind: str) -> list[str]:
    if names is None:
        return list(_DEFAULT_GPUS)
    if not isinstance(names, (list, tuple)) or not names:
        raise ProtocolError(
            "bad_params", f"{kind}: gpus must be a non-empty list")
    return [_norm_gpu(n, kind) for n in names]


def _norm_perf(p: Mapping[str, Any]) -> dict[str, Any]:
    _require(p, {"workloads", "gpus"}, "perf")
    return {"workloads": _norm_workload_list(p.get("workloads"), "perf"),
            "gpus": _norm_gpu_list(p.get("gpus"), "perf")}


def _norm_quadrant(p: Mapping[str, Any]) -> dict[str, Any]:
    _require(p, {"workload"}, "quadrant")
    if "workload" not in p:
        raise ProtocolError("bad_params", "quadrant: workload is required")
    return {"workload": _norm_workload(p["workload"], "quadrant")}


def _norm_accuracy(p: Mapping[str, Any]) -> dict[str, Any]:
    _require(p, {"workload", "gpu"}, "accuracy")
    if "workload" not in p:
        raise ProtocolError("bad_params", "accuracy: workload is required")
    return {"workload": _norm_workload(p["workload"], "accuracy"),
            "gpu": _norm_gpu(p.get("gpu", "H200"), "accuracy")}


def _norm_edp(p: Mapping[str, Any]) -> dict[str, Any]:
    _require(p, {"workload", "gpu", "repeats"}, "edp")
    if "workload" not in p:
        raise ProtocolError("bad_params", "edp: workload is required")
    repeats = p.get("repeats")
    if repeats is not None and (not isinstance(repeats, int)
                                or isinstance(repeats, bool) or repeats < 1):
        raise ProtocolError("bad_params", "edp: repeats must be an int >= 1")
    return {"workload": _norm_workload(p["workload"], "edp"),
            "gpu": _norm_gpu(p.get("gpu", "H200"), "edp"),
            "repeats": repeats}


def _norm_roofline(p: Mapping[str, Any]) -> dict[str, Any]:
    _require(p, {"workloads", "gpu"}, "roofline")
    return {"workloads": _norm_workload_list(p.get("workloads"), "roofline"),
            "gpu": _norm_gpu(p.get("gpu", "H200"), "roofline")}


_WHATIF_SCALABLE = {"tc_fp64", "cc_fp64", "tc_fp16", "tc_b1", "dram_bw",
                    "l1_bw", "launch_overhead_s", "stage_latency_s"}


def _norm_whatif(p: Mapping[str, Any]) -> dict[str, Any]:
    _require(p, {"base", "scales", "workloads", "variant"}, "whatif")
    scales = p.get("scales")
    if not isinstance(scales, Mapping) or not scales:
        raise ProtocolError(
            "bad_params",
            "whatif: scales must be a non-empty {resource: factor} map")
    out_scales: dict[str, float] = {}
    for key in sorted(scales):
        if key not in _WHATIF_SCALABLE:
            raise ProtocolError(
                "bad_params",
                f"whatif: cannot scale {key!r}; "
                f"scalable: {sorted(_WHATIF_SCALABLE)}")
        factor = scales[key]
        if not isinstance(factor, (int, float)) or isinstance(factor, bool) \
                or factor <= 0:
            raise ProtocolError(
                "bad_params", f"whatif: scale for {key} must be > 0")
        out_scales[key] = float(factor)
    variant = p.get("variant", "tc")
    if variant not in ("tc", "cc", "cce", "baseline"):
        raise ProtocolError(
            "bad_params", f"whatif: unknown variant {variant!r}")
    return {"base": _norm_gpu(p.get("base", "B200"), "whatif"),
            "scales": out_scales,
            "workloads": _norm_workload_list(p.get("workloads"), "whatif"),
            "variant": variant}


def _norm_empty(kind: str) -> Callable[[Mapping[str, Any]], dict[str, Any]]:
    def norm(p: Mapping[str, Any]) -> dict[str, Any]:
        _require(p, set(), kind)
        return {}
    return norm


#: kind -> params normalizer.  ``metrics``/``ping`` are service-level and
#: never reach the model pool.
QUERY_KINDS: dict[str, Callable[[Mapping[str, Any]], dict[str, Any]]] = {
    "perf": _norm_perf,
    "quadrant": _norm_quadrant,
    "accuracy": _norm_accuracy,
    "edp": _norm_edp,
    "roofline": _norm_roofline,
    "whatif": _norm_whatif,
    "observations": _norm_empty("observations"),
    "metrics": _norm_empty("metrics"),
    "ping": _norm_empty("ping"),
}


def normalize_params(kind: str, params: Mapping[str, Any] | None
                     ) -> dict[str, Any]:
    """Validate ``params`` for ``kind`` and fill canonical defaults."""
    if kind not in QUERY_KINDS:
        raise ProtocolError(
            "unknown_kind",
            f"unknown query kind {kind!r}; known: {sorted(QUERY_KINDS)}")
    if params is None:
        params = {}
    if not isinstance(params, Mapping):
        raise ProtocolError("bad_params", "params must be an object")
    return QUERY_KINDS[kind](params)


# -------------------------------------------------------------- handshake

def encode_handshake(token: str) -> str:
    """The authentication frame a client sends as its first line."""
    return json.dumps({"fabric": HANDSHAKE_VERSION, "token": token},
                      separators=(",", ":")) + "\n"


def decode_handshake(line: str) -> str:
    """Validate one handshake line and return its token.

    Raises :class:`ProtocolError` with ``auth_required`` when the line is
    not a handshake at all (so a token-protected server can refuse a bare
    query before parsing it) and ``bad_token`` when it is a handshake but
    an unacceptable one (oversized, wrong version, ill-formed token).
    """
    if len(line) > HANDSHAKE_MAX_BYTES:
        raise ProtocolError(
            "bad_token",
            f"handshake line exceeds {HANDSHAKE_MAX_BYTES} bytes")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        raise ProtocolError(
            "auth_required",
            "this server requires a fabric handshake as the first line") \
            from None
    if not isinstance(payload, dict) or "fabric" not in payload:
        raise ProtocolError(
            "auth_required",
            "this server requires a fabric handshake as the first line")
    if payload.get("fabric") != HANDSHAKE_VERSION:
        raise ProtocolError(
            "bad_token",
            f"unsupported handshake version {payload.get('fabric')!r} "
            f"(speaking {HANDSHAKE_VERSION})")
    token = payload.get("token")
    if not isinstance(token, str) or not token:
        raise ProtocolError(
            "bad_token", "handshake token must be a non-empty string")
    return token


def is_handshake_line(text: str) -> bool:
    """Cheaply recognize a handshake frame (for tokenless servers)."""
    if '"fabric"' not in text[:64]:
        return False
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return False
    return isinstance(payload, dict) and "fabric" in payload


# -------------------------------------------------------------- envelopes

@dataclass(frozen=True)
class Request:
    """One decoded, validated query."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    id: str | None = None
    deadline_s: float | None = None
    #: bypass the served-result cache (the answer is bit-identical either
    #: way; this forces the model path — used by load tests)
    fresh: bool = False


@dataclass(frozen=True)
class Response:
    """One reply, mirroring the request id."""

    id: str | None
    ok: bool
    result: Any = None
    error: dict[str, str] | None = None
    #: model | coalesced | cache | store | stale | auth | router
    served_by: str = "model"
    stale: bool = False
    trace: dict[str, float] | None = None
    #: which shard produced the answer (None outside the fabric)
    shard_id: str | None = None


def encode_request(req: Request) -> str:
    payload: dict[str, Any] = {"kind": req.kind, "params": req.params}
    if req.id is not None:
        payload["id"] = req.id
    if req.deadline_s is not None:
        payload["deadline_s"] = req.deadline_s
    if req.fresh:
        payload["fresh"] = True
    return json.dumps(payload, separators=(",", ":")) + "\n"


def decode_request(line: str) -> Request:
    """Parse and validate one request line (normalizing its params)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_request", f"unparseable JSON: {exc}") \
            from exc
    if not isinstance(payload, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise ProtocolError("bad_request", "request needs a string 'kind'")
    req_id = payload.get("id")
    if req_id is not None and not isinstance(req_id, str):
        raise ProtocolError("bad_request", "'id' must be a string")
    deadline = payload.get("deadline_s")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool) or deadline <= 0:
            raise ProtocolError("bad_request", "'deadline_s' must be > 0")
        deadline = float(deadline)
    fresh = payload.get("fresh", False)
    if not isinstance(fresh, bool):
        raise ProtocolError("bad_request", "'fresh' must be a boolean")
    params = normalize_params(kind, payload.get("params"))
    return Request(kind=kind, params=params, id=req_id,
                   deadline_s=deadline, fresh=fresh)


def encode_response(resp: Response) -> str:
    payload: dict[str, Any] = {
        "id": resp.id,
        "ok": resp.ok,
        "served_by": resp.served_by,
        "stale": resp.stale,
    }
    if resp.ok:
        payload["result"] = resp.result
    else:
        payload["error"] = resp.error
    if resp.trace is not None:
        payload["trace"] = resp.trace
    if resp.shard_id is not None:
        payload["shard_id"] = resp.shard_id
    return json.dumps(payload, separators=(",", ":")) + "\n"


def decode_response(line: str) -> Response:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "bad_request", f"unparseable response: {exc}") from exc
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("bad_request", "malformed response envelope")
    return Response(
        id=payload.get("id"),
        ok=bool(payload["ok"]),
        result=payload.get("result"),
        error=payload.get("error"),
        served_by=payload.get("served_by", "model"),
        stale=bool(payload.get("stale", False)),
        trace=payload.get("trace"),
        shard_id=payload.get("shard_id"),
    )
