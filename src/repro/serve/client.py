"""Clients for the characterization-query service.

:class:`ServeClient` is the blocking TCP JSON-lines client the CLI and
load generator use — stdlib sockets only, one connection, sequential
queries.  :class:`InProcessClient` wraps a
:class:`~repro.serve.server.CharacterizationService` directly for
embedding the service into another asyncio program (or test) without a
socket in between.

Transport failures are survivable (docs/ROBUSTNESS.md): every query is
idempotent — answers are content-keyed and deterministic — so a dropped
connection (reset, short read, server drain) raises the typed
:class:`ServeConnectionError` naming the endpoint and query kind, and
:meth:`ServeClient.query` transparently reconnects and re-asks up to
``retries`` times with deterministic jittered exponential backoff.  Only
connection-level failures are retried; server-side errors come back as
``ok: false`` responses and protocol violations raise immediately.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import socket

from .protocol import (
    ProtocolError,
    Request,
    Response,
    decode_response,
    encode_handshake,
    encode_request,
    normalize_params,
)

__all__ = ["InProcessClient", "ServeClient", "ServeConnectionError"]


class ServeConnectionError(ProtocolError):
    """The connection to the server died mid-query.

    Carries the endpoint, the query kind, the last-known shard identity,
    and how many retries this client has already burned, so a failure
    inside a load generator or sweep names exactly which call to which
    server (and which fabric shard) dropped — not just a bare
    ``ConnectionResetError``.  Subclasses :class:`ProtocolError` (code
    ``conn_dropped``) so existing handlers that catch protocol errors
    keep working.
    """

    def __init__(self, host: str, port: int, kind: str, detail: str, *,
                 shard_id: str | None = None, retry_count: int = 0) -> None:
        shard = f" (shard {shard_id})" if shard_id else ""
        retries = f"; {retry_count} retr" \
                  f"{'y' if retry_count == 1 else 'ies'} so far" \
            if retry_count else ""
        super().__init__(
            "conn_dropped",
            f"connection to {host}:{port}{shard} dropped during "
            f"{kind!r} query: {detail}{retries}")
        self.host = host
        self.port = port
        self.kind = kind
        self.shard_id = shard_id
        self.retry_count = retry_count


class ServeClient:
    """Blocking TCP client: one JSON line out, one JSON line back.

    ``retries`` bounds how many times a dropped connection is re-asked
    (0 disables); backoff between attempts is ``backoff_base_s * 2**n``
    capped at ``backoff_cap_s``, jittered deterministically from the
    attempt counter so concurrent clients do not stampede in lockstep.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7341, *,
                 timeout_s: float = 60.0, retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 token: str | None = None) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        #: shared fabric secret; sent as a handshake line on connect
        self.token = token
        #: connection-drop retries performed over this client's lifetime
        self.retry_count = 0
        #: last shard that answered (learned from handshake / responses)
        self.shard_id: str | None = None
        self._sock: socket.socket | None = None
        self._file = None
        self._counter = 0

    # ------------------------------------------------------------ plumbing
    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout_s)
        self._sock = sock
        self._file = sock.makefile("r", encoding="utf-8", newline="\n")
        if self.token is not None:
            self._handshake()

    def _handshake(self) -> None:
        """Authenticate the fresh connection (one line each way).

        A connection-level failure raises :class:`ServeConnectionError`
        (retriable); an explicit refusal raises plain
        :class:`ProtocolError` with the server's code (``bad_token`` /
        ``auth_required``) — retrying a rejected credential is pointless.
        """
        assert self._sock is not None and self._file is not None
        try:
            self._sock.sendall(encode_handshake(self.token).encode())
            line = self._file.readline()
        except OSError as exc:
            self.close()
            raise self._conn_error("handshake", str(exc)) from exc
        if not line or not line.endswith("\n"):
            self.close()
            raise self._conn_error(
                "handshake", "connection closed during the handshake")
        resp = decode_response(line)
        if not resp.ok:
            err = resp.error or {}
            self.close()
            raise ProtocolError(err.get("code", "bad_token"),
                                err.get("message", "handshake refused"))
        shard = resp.shard_id
        if shard is None and isinstance(resp.result, dict):
            shard = resp.result.get("shard_id")
        if shard is not None:
            self.shard_id = shard

    def _conn_error(self, kind: str, detail: str) -> ServeConnectionError:
        return ServeConnectionError(self.host, self.port, kind, detail,
                                    shard_id=self.shard_id,
                                    retry_count=self.retry_count)

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # --------------------------------------------------------------- query
    def _backoff_s(self, attempt: int) -> float:
        base = min(self.backoff_base_s * (2 ** attempt), self.backoff_cap_s)
        # deterministic jitter in [0.5, 1.0) from the repo's LCG constants
        mix = (1664525 * (attempt + 1) + 1013904223) & 0xFFFFFFFF
        return base * (0.5 + (mix / float(1 << 32)) / 2.0)

    def _query_once(self, req: Request) -> Response:
        """One send/receive over the current connection.

        Any way the connection can die mid-query — reset, refused
        reconnect, the server closing without replying, a reply cut off
        mid-line — raises :class:`ServeConnectionError` after closing
        the socket, so the retry path always starts from a clean
        connection.
        """
        try:
            self.connect()
        except OSError as exc:
            self.close()
            raise self._conn_error(req.kind,
                                   f"connect failed: {exc}") from exc
        assert self._sock is not None and self._file is not None
        try:
            self._sock.sendall(encode_request(req).encode())
            line = self._file.readline()
        except OSError as exc:
            self.close()
            raise self._conn_error(req.kind, str(exc)) from exc
        if not line:
            self.close()
            raise self._conn_error(
                req.kind, "server closed the connection before replying")
        if not line.endswith("\n"):
            # short read: the connection died mid-reply; the fragment is
            # not trustworthy, so drop it and the socket together
            self.close()
            raise self._conn_error(
                req.kind, f"reply truncated after {len(line)} bytes")
        resp = decode_response(line)
        if resp.shard_id is not None:
            self.shard_id = resp.shard_id
        return resp

    def query(self, kind: str, params: Mapping[str, Any] | None = None, *,
              deadline_s: float | None = None, fresh: bool = False,
              id: str | None = None) -> Response:
        """Send one query, retrying dropped connections, and block for
        the response.

        Raises :class:`ServeConnectionError` when the connection drops
        more than ``retries`` times, and plain :class:`ProtocolError` on
        a protocol violation (unparseable reply); a server-side error
        comes back as a normal ``ok: false`` response for the caller to
        inspect.
        """
        if id is None:
            self._counter += 1
            id = f"c{self._counter}"
        req = Request(kind=kind,
                      params=normalize_params(kind, params),
                      id=id, deadline_s=deadline_s, fresh=fresh)
        attempt = 0
        while True:
            try:
                return self._query_once(req)
            except ServeConnectionError:
                if attempt >= self.retries:
                    raise
                time.sleep(self._backoff_s(attempt))
                attempt += 1
                self.retry_count += 1


class InProcessClient:
    """Async client bound directly to a service instance (no socket)."""

    def __init__(self, service: Any) -> None:
        self.service = service
        self._counter = 0

    async def query(self, kind: str,
                    params: Mapping[str, Any] | None = None, *,
                    deadline_s: float | None = None,
                    fresh: bool = False) -> Response:
        self._counter += 1
        req = Request(kind=kind, params=normalize_params(kind, params),
                      id=f"p{self._counter}", deadline_s=deadline_s,
                      fresh=fresh)
        return await self.service.handle(req)
