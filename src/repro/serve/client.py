"""Clients for the characterization-query service.

:class:`ServeClient` is the blocking TCP JSON-lines client the CLI and
load generator use — stdlib sockets only, one connection, sequential
queries.  :class:`InProcessClient` wraps a
:class:`~repro.serve.server.CharacterizationService` directly for
embedding the service into another asyncio program (or test) without a
socket in between.
"""

from __future__ import annotations

import socket
from typing import Any, Mapping

from .protocol import (
    ProtocolError,
    Request,
    Response,
    decode_response,
    encode_request,
    normalize_params,
)

__all__ = ["InProcessClient", "ServeClient"]


class ServeClient:
    """Blocking TCP client: one JSON line out, one JSON line back."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7341, *,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock: socket.socket | None = None
        self._file = None
        self._counter = 0

    # ------------------------------------------------------------ plumbing
    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout_s)
        self._sock = sock
        self._file = sock.makefile("r", encoding="utf-8", newline="\n")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # --------------------------------------------------------------- query
    def query(self, kind: str, params: Mapping[str, Any] | None = None, *,
              deadline_s: float | None = None, fresh: bool = False,
              id: str | None = None) -> Response:
        """Send one query and block for its response.

        Raises :class:`ProtocolError` on transport failure (closed
        connection, unparseable reply); a server-side error comes back as
        a normal ``ok: false`` response for the caller to inspect.
        """
        self.connect()
        assert self._sock is not None and self._file is not None
        if id is None:
            self._counter += 1
            id = f"c{self._counter}"
        req = Request(kind=kind,
                      params=normalize_params(kind, params),
                      id=id, deadline_s=deadline_s, fresh=fresh)
        try:
            self._sock.sendall(encode_request(req).encode())
            line = self._file.readline()
        except OSError as exc:
            self.close()
            raise ProtocolError("bad_request",
                                f"transport failure: {exc}") from exc
        if not line:
            self.close()
            raise ProtocolError("bad_request",
                                "server closed the connection")
        return decode_response(line)


class InProcessClient:
    """Async client bound directly to a service instance (no socket)."""

    def __init__(self, service: Any) -> None:
        self.service = service
        self._counter = 0

    async def query(self, kind: str,
                    params: Mapping[str, Any] | None = None, *,
                    deadline_s: float | None = None,
                    fresh: bool = False) -> Response:
        self._counter += 1
        req = Request(kind=kind, params=normalize_params(kind, params),
                      id=f"p{self._counter}", deadline_s=deadline_s,
                      fresh=fresh)
        return await self.service.handle(req)
