"""Clients for the characterization-query service.

:class:`ServeClient` is the blocking TCP JSON-lines client the CLI and
load generator use — stdlib sockets only, one connection, sequential
queries.  :class:`InProcessClient` wraps a
:class:`~repro.serve.server.CharacterizationService` directly for
embedding the service into another asyncio program (or test) without a
socket in between.

Transport failures are survivable (docs/ROBUSTNESS.md): every query is
idempotent — answers are content-keyed and deterministic — so a dropped
connection (reset, short read, server drain) raises the typed
:class:`ServeConnectionError` naming the endpoint and query kind, and
:meth:`ServeClient.query` transparently reconnects and re-asks up to
``retries`` times with deterministic jittered exponential backoff.  Only
connection-level failures are retried; server-side errors come back as
``ok: false`` responses and protocol violations raise immediately.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import socket

from .protocol import (
    ProtocolError,
    Request,
    Response,
    decode_response,
    encode_request,
    normalize_params,
)

__all__ = ["InProcessClient", "ServeClient", "ServeConnectionError"]


class ServeConnectionError(ProtocolError):
    """The connection to the server died mid-query.

    Carries the endpoint and the query kind so a failure inside a load
    generator or sweep names exactly which call to which server dropped —
    not just a bare ``ConnectionResetError``.  Subclasses
    :class:`ProtocolError` (code ``conn_dropped``) so existing handlers
    that catch protocol errors keep working.
    """

    def __init__(self, host: str, port: int, kind: str,
                 detail: str) -> None:
        super().__init__(
            "conn_dropped",
            f"connection to {host}:{port} dropped during {kind!r} query: "
            f"{detail}")
        self.host = host
        self.port = port
        self.kind = kind


class ServeClient:
    """Blocking TCP client: one JSON line out, one JSON line back.

    ``retries`` bounds how many times a dropped connection is re-asked
    (0 disables); backoff between attempts is ``backoff_base_s * 2**n``
    capped at ``backoff_cap_s``, jittered deterministically from the
    attempt counter so concurrent clients do not stampede in lockstep.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7341, *,
                 timeout_s: float = 60.0, retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 1.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        #: connection-drop retries performed over this client's lifetime
        self.retry_count = 0
        self._sock: socket.socket | None = None
        self._file = None
        self._counter = 0

    # ------------------------------------------------------------ plumbing
    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout_s)
        self._sock = sock
        self._file = sock.makefile("r", encoding="utf-8", newline="\n")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # --------------------------------------------------------------- query
    def _backoff_s(self, attempt: int) -> float:
        base = min(self.backoff_base_s * (2 ** attempt), self.backoff_cap_s)
        # deterministic jitter in [0.5, 1.0) from the repo's LCG constants
        mix = (1664525 * (attempt + 1) + 1013904223) & 0xFFFFFFFF
        return base * (0.5 + (mix / float(1 << 32)) / 2.0)

    def _query_once(self, req: Request) -> Response:
        """One send/receive over the current connection.

        Any way the connection can die mid-query — reset, refused
        reconnect, the server closing without replying, a reply cut off
        mid-line — raises :class:`ServeConnectionError` after closing
        the socket, so the retry path always starts from a clean
        connection.
        """
        try:
            self.connect()
        except OSError as exc:
            self.close()
            raise ServeConnectionError(self.host, self.port, req.kind,
                                       f"connect failed: {exc}") from exc
        assert self._sock is not None and self._file is not None
        try:
            self._sock.sendall(encode_request(req).encode())
            line = self._file.readline()
        except OSError as exc:
            self.close()
            raise ServeConnectionError(self.host, self.port, req.kind,
                                       str(exc)) from exc
        if not line:
            self.close()
            raise ServeConnectionError(
                self.host, self.port, req.kind,
                "server closed the connection before replying")
        if not line.endswith("\n"):
            # short read: the connection died mid-reply; the fragment is
            # not trustworthy, so drop it and the socket together
            self.close()
            raise ServeConnectionError(
                self.host, self.port, req.kind,
                f"reply truncated after {len(line)} bytes")
        return decode_response(line)

    def query(self, kind: str, params: Mapping[str, Any] | None = None, *,
              deadline_s: float | None = None, fresh: bool = False,
              id: str | None = None) -> Response:
        """Send one query, retrying dropped connections, and block for
        the response.

        Raises :class:`ServeConnectionError` when the connection drops
        more than ``retries`` times, and plain :class:`ProtocolError` on
        a protocol violation (unparseable reply); a server-side error
        comes back as a normal ``ok: false`` response for the caller to
        inspect.
        """
        if id is None:
            self._counter += 1
            id = f"c{self._counter}"
        req = Request(kind=kind,
                      params=normalize_params(kind, params),
                      id=id, deadline_s=deadline_s, fresh=fresh)
        attempt = 0
        while True:
            try:
                return self._query_once(req)
            except ServeConnectionError:
                if attempt >= self.retries:
                    raise
                time.sleep(self._backoff_s(attempt))
                attempt += 1
                self.retry_count += 1


class InProcessClient:
    """Async client bound directly to a service instance (no socket)."""

    def __init__(self, service: Any) -> None:
        self.service = service
        self._counter = 0

    async def query(self, kind: str,
                    params: Mapping[str, Any] | None = None, *,
                    deadline_s: float | None = None,
                    fresh: bool = False) -> Response:
        self._counter += 1
        req = Request(kind=kind, params=normalize_params(kind, params),
                      id=f"p{self._counter}", deadline_s=deadline_s,
                      fresh=fresh)
        return await self.service.handle(req)
