"""Admission control and robustness: queue cap, rate limit, breakers.

Three independent gates decide whether a request may start new model
work, checked in this order by the server:

1. a **token bucket** rate limiter (global queries-per-second with a
   burst allowance; ``rate=None`` disables it),
2. a **queue-depth cap** on distinct in-flight model jobs — joining an
   in-flight job (coalescing) or hitting the served-result cache is
   always admitted since it adds no work,
3. a per-query-kind **circuit breaker**: ``failure_threshold``
   consecutive model failures (errors or deadline overruns) trip it open
   for ``cooldown_s``; while open, requests degrade to the last-good
   cached answer (marked stale) or fail fast with ``circuit_open``.
   After the cooldown one half-open probe is let through — success
   closes the breaker, failure re-opens it.

Deadlines themselves are enforced by the server with
``asyncio.wait_for`` around a *shielded* shared future, so one client's
timeout never cancels work other clients are coalesced onto.
"""

from __future__ import annotations

import time
from typing import Callable

from .telemetry import Telemetry

__all__ = ["AdmissionController", "CircuitBreaker", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    def __init__(self, rate: float, burst: float | None = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(rate, 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def try_acquire(self, n: float = 1.0) -> bool:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


class CircuitBreaker:
    """closed -> open -> half-open -> closed, per query kind."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 10.0,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    def allow(self) -> bool:
        """May a request start model work right now?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self.state = self.HALF_OPEN
                self._probe_inflight = True
                return True
            return False
        # half-open: exactly one probe at a time
        if not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._probe_inflight = False
        self.state = self.CLOSED

    def record_failure(self) -> None:
        self._probe_inflight = False
        if self.state == self.HALF_OPEN:
            self._trip()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self._failures = 0
        self._opened_at = self._clock()


class AdmissionController:
    """The server's gatekeeper; owns the bucket and per-kind breakers."""

    def __init__(self, *, max_queue_depth: int = 64,
                 rate: float | None = None, burst: float | None = None,
                 breaker_threshold: int = 5, breaker_cooldown_s: float = 10.0,
                 telemetry: Telemetry | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._clock = clock
        self._bucket = TokenBucket(rate, burst, clock=clock) \
            if rate is not None else None
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._breakers: dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------- gates
    def try_rate(self) -> bool:
        """Gate 1: token bucket (True when disabled)."""
        if self._bucket is None:
            return True
        ok = self._bucket.try_acquire()
        if not ok:
            self.telemetry.inc("rejected_rate_total")
        return ok

    def try_depth(self, inflight: int) -> bool:
        """Gate 2: may a NEW model job start, given current in-flight?"""
        ok = inflight < self.max_queue_depth
        if not ok:
            self.telemetry.inc("rejected_depth_total")
        return ok

    def breaker(self, kind: str) -> CircuitBreaker:
        b = self._breakers.get(kind)
        if b is None:
            b = self._breakers[kind] = CircuitBreaker(
                self._breaker_threshold, self._breaker_cooldown_s,
                clock=self._clock)
        return b

    def allow_model(self, kind: str) -> bool:
        """Gate 3: is the breaker for this kind letting work through?"""
        allowed = self.breaker(kind).allow()
        if not allowed:
            self.telemetry.inc("breaker_blocked_total")
        self._export_states()
        return allowed

    def record_result(self, kind: str, ok: bool) -> None:
        """Model outcome feedback (deadline overruns count as failures)."""
        b = self.breaker(kind)
        if ok:
            b.record_success()
        else:
            b.record_failure()
            self.telemetry.inc("model_failures_total")
        self._export_states()

    def _export_states(self) -> None:
        self.telemetry.gauge(
            "breaker_states",
            {k: b.state for k, b in sorted(self._breakers.items())})
