"""``repro.serve`` — the async characterization-query service.

The batch CLI answers the paper's questions once per invocation; this
subsystem serves them continuously: a JSON-lines request/response
protocol over typed query kinds (``perf``, ``quadrant``, ``accuracy``,
``edp``, ``roofline``, ``whatif``, ``observations``, plus service-level
``metrics``/``ping``), an asyncio pipeline that coalesces identical
in-flight queries by content key, batches compatible perf queries into
one :class:`~repro.perf.executor.ParallelExecutor` submission, and runs
model work on a bounded process pool; admission control (queue-depth
cap, token-bucket rate limiting, per-kind circuit breakers degrading to
last-good answers marked stale); and per-request trace spans with
rolling latency histograms exported as a ``metrics`` snapshot.

Entry points: ``repro serve`` (TCP server), ``repro query`` (one-shot
client, ``--local`` for in-process), ``repro loadgen`` (closed-loop load
harness).  Protocol and degradation semantics: docs/SERVE.md.
"""

from .admission import AdmissionController, CircuitBreaker, TokenBucket
from .client import InProcessClient, ServeClient, ServeConnectionError
from .loadgen import (
    DEFAULT_MIX,
    HostedService,
    format_loadgen_report,
    loadgen_failures,
    reference_digests,
    run_loadgen,
)
from .protocol import (
    ERROR_CODES,
    HANDSHAKE_MAX_BYTES,
    HANDSHAKE_VERSION,
    PROTOCOL_VERSION,
    ProtocolError,
    QUERY_KINDS,
    Request,
    Response,
    decode_handshake,
    decode_request,
    decode_response,
    encode_handshake,
    encode_request,
    encode_response,
    is_handshake_line,
    normalize_params,
)
from .queries import resolve_perf_batch, resolve_query
from .scheduler import ModelPool, Scheduler, query_key
from .server import (
    CharacterizationService,
    ServeConfig,
    require_loopback_or_token,
    run_query_locally,
)
from .telemetry import RollingHistogram, Telemetry, Trace

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "TokenBucket",
    "InProcessClient",
    "ServeClient",
    "ServeConnectionError",
    "DEFAULT_MIX",
    "HostedService",
    "format_loadgen_report",
    "loadgen_failures",
    "reference_digests",
    "run_loadgen",
    "ERROR_CODES",
    "HANDSHAKE_MAX_BYTES",
    "HANDSHAKE_VERSION",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUERY_KINDS",
    "Request",
    "Response",
    "decode_handshake",
    "decode_request",
    "decode_response",
    "encode_handshake",
    "encode_request",
    "encode_response",
    "is_handshake_line",
    "normalize_params",
    "resolve_perf_batch",
    "resolve_query",
    "ModelPool",
    "Scheduler",
    "query_key",
    "CharacterizationService",
    "ServeConfig",
    "require_loopback_or_token",
    "run_query_locally",
    "RollingHistogram",
    "Telemetry",
    "Trace",
]
