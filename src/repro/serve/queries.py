"""Query resolvers: normalized protocol params -> JSON-able answers.

Every resolver is a module-level function of plain data, so the scheduler
can run it in a worker process (picklable) or a thread interchangeably.
Resolvers route through the same harness/analysis entry points the CLI
uses — ``run_performance``, ``classify``, ``accuracy_table``,
``edp_study``, ``suite_roofline``, ``evaluate_whatif``, ``verify_all`` —
so a served answer and the equivalent direct invocation are computed by
the same code on the same deterministic inputs and are therefore
bit-identical (floats cross the JSON wire via repr-shortest round-trip).

:func:`resolve_perf_batch` is the batching entry: several compatible
(same device list) perf queries merge into one task-graph execution
(:func:`~repro.harness.runner.run_performance` in graph mode — serve is
just another graph consumer) over the union of their workloads, then
split back per query in the exact order a direct call would have
produced.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any, Mapping, Sequence

import numpy as np

from ..analysis.accuracy import accuracy_table
from ..analysis.quadrants import classify
from ..analysis.roofline import suite_roofline
from ..gpu.device import Device
from ..harness.runner import PerfRecord, run_performance
from ..harness.whatif import evaluate_whatif, hypothetical
from ..kernels import Variant, all_workloads, get_workload

__all__ = ["jsonable", "perf_payload", "resolve_perf_batch",
           "resolve_query"]


def jsonable(obj: Any) -> Any:
    """Recursively convert model output into JSON-encodable plain data."""
    # Enum first: Variant/Quadrant subclass str, which must not win
    if isinstance(obj, Enum):
        return jsonable(obj.value)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [jsonable(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, Mapping):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) \
            else obj
        return [jsonable(x) for x in items]
    raise TypeError(f"cannot serve a {type(obj).__name__!r} value")


# ------------------------------------------------------------------ perf

def perf_payload(records: Sequence[PerfRecord]) -> list[dict[str, Any]]:
    """The wire form of a record list (Quadrant enums become values)."""
    return [jsonable(r) for r in records]


def _resolve_perf(params: Mapping[str, Any], *,
                  n_jobs: int = 1) -> list[dict[str, Any]]:
    names = params["workloads"]
    workloads = None if names is None else [get_workload(n) for n in names]
    devices = [Device(g) for g in params["gpus"]]
    records = run_performance(workloads=workloads, devices=devices,
                              n_jobs=n_jobs)
    return perf_payload(records)


def resolve_perf_batch(param_sets: Sequence[Mapping[str, Any]],
                       n_jobs: int = 1) -> list[list[dict[str, Any]]]:
    """Answer several same-device perf queries from one grid evaluation.

    The union of the queries' workloads (suite order; ``None`` means the
    whole suite) is evaluated once as a single task graph (one
    ``perf-grid`` node per workload, drained by the
    :class:`~repro.graph.GraphScheduler`), then each query's records are
    re-sliced in the device-major, requested-workload order a direct
    :func:`run_performance` call returns — the splitting is pure
    bookkeeping, so batched answers stay bit-identical to unbatched ones.
    """
    if not param_sets:
        return []
    gpus = list(param_sets[0]["gpus"])
    if any(list(p["gpus"]) != gpus for p in param_sets):
        raise ValueError("perf batch mixes device lists")
    suite = [w.name for w in all_workloads()]
    wanted: list[str] = []
    for p in param_sets:
        for name in (p["workloads"] if p["workloads"] is not None else suite):
            if name not in wanted:
                wanted.append(name)
    # canonical suite order keeps the union run identical to a direct
    # whole-suite call when every workload is requested
    union = [n for n in suite if n in wanted] \
        + [n for n in wanted if n not in suite]
    devices = [Device(g) for g in gpus]
    records = run_performance(
        workloads=[get_workload(n) for n in union], devices=devices,
        n_jobs=n_jobs)
    by_key: dict[tuple[str, str], list[PerfRecord]] = {}
    for r in records:
        by_key.setdefault((r.gpu, r.workload), []).append(r)
    out = []
    for p in param_sets:
        names = p["workloads"] if p["workloads"] is not None else suite
        sliced: list[PerfRecord] = []
        for dev in devices:
            for name in names:
                sliced.extend(by_key.get((dev.spec.name, name), ()))
        out.append(perf_payload(sliced))
    return out


# ------------------------------------------------------------- the rest

def _resolve_quadrant(params: Mapping[str, Any]) -> dict[str, Any]:
    profile = classify(get_workload(params["workload"]))
    payload = jsonable(profile)
    payload["input_full"] = profile.input_full
    payload["output_full"] = profile.output_full
    return payload


def _resolve_accuracy(params: Mapping[str, Any]) -> Any:
    w = get_workload(params["workload"])
    if not w.floating_point:
        raise ValueError(
            f"{w.name} performs no floating-point computation")
    return jsonable(accuracy_table(w, Device(params["gpu"])))


def _resolve_edp(params: Mapping[str, Any]) -> Any:
    from ..analysis.edp import edp_study
    return jsonable(edp_study(get_workload(params["workload"]),
                              Device(params["gpu"]),
                              repeats=params.get("repeats")))


def _resolve_roofline(params: Mapping[str, Any]) -> dict[str, Any]:
    names = params["workloads"]
    workloads = all_workloads() if names is None \
        else [get_workload(n) for n in names]
    roof = suite_roofline(workloads, Device(params["gpu"]))
    return {
        "gpu": roof.spec.name,
        "tc_ceiling": roof.tc_ceiling,
        "cc_ceiling": roof.cc_ceiling,
        "ridge_point_tc": roof.ridge_point("tc"),
        "ridge_point_cc": roof.ridge_point("cc"),
        "points": jsonable(roof.points),
    }


def _resolve_whatif(params: Mapping[str, Any]) -> dict[str, Any]:
    spec = hypothetical(params["base"], **params["scales"])
    names = params["workloads"]
    workloads = all_workloads() if names is None \
        else [get_workload(n) for n in names]
    results = evaluate_whatif(workloads, params["base"], spec,
                              Variant(params["variant"]))
    rows = []
    for r in results:
        row = jsonable(r)
        row["speedup"] = r.speedup
        rows.append(row)
    return {"spec": spec.name, "results": rows}


def _resolve_observations(params: Mapping[str, Any]) -> Any:
    from ..analysis.observations import verify_all
    return jsonable(verify_all(n_jobs=1))


_RESOLVERS = {
    "perf": _resolve_perf,
    "quadrant": _resolve_quadrant,
    "accuracy": _resolve_accuracy,
    "edp": _resolve_edp,
    "roofline": _resolve_roofline,
    "whatif": _resolve_whatif,
    "observations": _resolve_observations,
}


def resolve_query(kind: str, params: Mapping[str, Any]) -> Any:
    """Resolve one normalized query to its JSON-able answer."""
    try:
        resolver = _RESOLVERS[kind]
    except KeyError:
        raise ValueError(f"kind {kind!r} has no model resolver") from None
    return resolver(params)
