"""Deterministic consistent-hash ring with virtual nodes.

The router places every shard at :attr:`HashRing.replicas` pseudo-random
points on a 64-bit ring (SHA-256 of ``"{shard_id}#{replica}"`` — never
Python's salted ``hash()``, so placement is identical in every process)
and routes a query key to the first shard point at or after the key's
own hash.  Virtual nodes smooth the per-shard load; consistent hashing
gives the minimal-disruption property the serve tier needs: when a shard
dies, only the keys it owned move (to the next point on the ring), so
the surviving shards' served-result LRUs and coalescing windows stay
warm.

:meth:`HashRing.owners` returns the *failover order* for a key — the
unique shards in ring-walk order — which is exactly the replay sequence
the router tries when an owner is down.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["HashRing"]


class HashRing:
    """Maps content keys to shard ids, stably across processes."""

    def __init__(self, shard_ids: Sequence[str], *,
                 replicas: int = 64) -> None:
        ids = list(shard_ids)
        if not ids:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in {ids}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_ids = tuple(ids)
        self.replicas = replicas
        points = [(self._hash(f"{sid}#{r}"), sid)
                  for sid in ids for r in range(replicas)]
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @staticmethod
    def _hash(data: str) -> int:
        """First 8 bytes of SHA-256, as the ring position."""
        return int.from_bytes(
            hashlib.sha256(data.encode()).digest()[:8], "big")

    def owners(self, key: str,
               alive: Iterable[str] | None = None) -> list[str]:
        """Every eligible shard in failover (ring-walk) order for ``key``.

        ``alive`` restricts the walk (unknown ids are ignored); ``None``
        means every shard.  The first element is the key's owner; the
        rest are the replay order when owners fail mid-query.
        """
        allowed = set(self.shard_ids) if alive is None \
            else set(alive) & set(self.shard_ids)
        if not allowed:
            return []
        start = bisect.bisect_right(self._hashes, self._hash(key))
        out: list[str] = []
        n = len(self._points)
        for i in range(n):
            sid = self._points[(start + i) % n][1]
            if sid in allowed and sid not in out:
                out.append(sid)
                if len(out) == len(allowed):
                    break
        return out

    def owner(self, key: str,
              alive: Iterable[str] | None = None) -> str | None:
        """The key's owning shard (None when nothing is alive)."""
        owners = self.owners(key, alive)
        return owners[0] if owners else None

    def ownership(self, keys: Iterable[str],
                  alive: Iterable[str] | None = None) -> dict[str, int]:
        """How many of ``keys`` each shard owns (load-balance probe)."""
        counts = {sid: 0 for sid in self.shard_ids}
        for key in keys:
            sid = self.owner(key, alive)
            if sid is not None:
                counts[sid] += 1
        return counts
