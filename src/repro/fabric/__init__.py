"""``repro.fabric`` — the sharded, authenticated serve tier.

The distributed layer over :mod:`repro.serve`: a router process
consistent-hashes query content-keys across N shard processes (each a
full serve pipeline, so coalescing, perf batching, and the served-result
LRU keep working *per shard*), authenticated by a shared-token handshake
line with per-token rate buckets, health-probed with failover that
re-owns a dead shard's hash ranges and replays its in-flight queries,
and backed by a persistent served-result store spilled through
:class:`~repro.perf.cache.ResultCache` so restarted shards warm from
disk.

Entry points: ``repro fabric start`` (shards + router), ``repro fabric
status``, ``repro serve --token/--shard-id/--persist``, ``repro loadgen
--router N``.  Wire and failure semantics: docs/SERVE.md
("The distributed tier").

Import discipline: this package eagerly re-exports only the leaf modules
(:mod:`~repro.fabric.auth`, :mod:`~repro.fabric.ring`,
:mod:`~repro.fabric.store`), which :mod:`repro.serve` itself imports
lazily at runtime.  The router and cluster layers import serve
*submodules* and must be imported directly
(``from repro.fabric.router import FabricRouter``) to keep the
serve <-> fabric import graph acyclic.
"""

from .auth import Authenticator, auth_gate, handshake_ok_line
from .ring import HashRing
from .store import ServedResultStore

__all__ = [
    "Authenticator",
    "HashRing",
    "ServedResultStore",
    "auth_gate",
    "handshake_ok_line",
]
