"""Shared-token authentication for the serve fabric.

The handshake is one JSON line (see
:func:`repro.serve.protocol.encode_handshake`) sent before any query;
a token-protected listener refuses *every* other first line with
``auth_required`` — before the line is even parsed as a query — and a
wrong or ill-formed token with ``bad_token``.  Token comparison uses
``hmac.compare_digest`` so timing does not leak prefix matches.

After a successful handshake every request on the connection passes a
per-token :class:`~repro.serve.admission.TokenBucket`, so one credential
cannot starve the others even behind the global rate gate.  Both the
shard server and the router reuse :func:`auth_gate` for the connection
state machine, keeping refusal semantics identical at every hop.
"""

from __future__ import annotations

import hmac
import time
from typing import Callable, Iterable

from ..serve.admission import TokenBucket
from ..serve.protocol import (
    HANDSHAKE_VERSION,
    ProtocolError,
    Response,
    decode_handshake,
    encode_response,
)

__all__ = ["Authenticator", "auth_gate", "handshake_ok_line"]


class Authenticator:
    """Verifies handshake tokens and rate-limits per credential."""

    def __init__(self, tokens: str | Iterable[str], *,
                 rate: float | None = None, burst: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if isinstance(tokens, str):
            tokens = [tokens]
        self.tokens = tuple(tokens)
        if not self.tokens or any(not t for t in self.tokens):
            raise ValueError("authentication tokens must be non-empty")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def verify(self, token: str) -> bool:
        """Constant-time membership test against every known token."""
        ok = False
        for known in self.tokens:
            # no early exit: check every token so timing stays flat
            ok = hmac.compare_digest(token, known) or ok
        return ok

    def handshake(self, line: str) -> str:
        """Validate one first line; returns the token or raises.

        ``auth_required`` when the line is not a handshake frame at all,
        ``bad_token`` when it is one but fails validation or carries an
        unknown token.
        """
        token = decode_handshake(line)
        if not self.verify(token):
            raise ProtocolError("bad_token", "unknown handshake token")
        return token

    def try_rate(self, token: str) -> bool:
        """Take one request from the token's bucket (True = admitted)."""
        if self.rate is None:
            return True
        bucket = self._buckets.get(token)
        if bucket is None:
            bucket = TokenBucket(rate=self.rate, burst=self.burst,
                                 clock=self._clock)
            self._buckets[token] = bucket
        return bucket.try_acquire()


def handshake_ok_line(shard_id: str | None) -> str:
    """The reply line confirming a handshake (carries our identity)."""
    return encode_response(Response(
        id=None, ok=True,
        result={"fabric": HANDSHAKE_VERSION, "shard_id": shard_id},
        served_by="auth", shard_id=shard_id))


def auth_gate(auth: Authenticator, text: str,
              shard_id: str | None) -> tuple[str, str | None]:
    """One un-authenticated first line through the gate.

    Returns ``(reply_line, token)``; ``token`` is None on refusal, in
    which case the caller closes the connection after writing the reply.
    """
    try:
        token = auth.handshake(text)
    except ProtocolError as exc:
        reply = encode_response(Response(
            id=None, ok=False,
            error={"code": exc.code, "message": exc.message},
            served_by="auth", shard_id=shard_id))
        return reply, None
    return handshake_ok_line(shard_id), token
