"""Fabric assembly: shard processes, hosted shards, hosted routers.

Two ways to stand a fabric up:

* :func:`spawn_local_shards` launches N real ``repro serve`` *processes*
  (``python -m repro serve --port 0 ...``), parses each one's listen
  banner for the ephemeral port, and returns their
  :class:`~repro.fabric.router.ShardSpec` list — what ``repro fabric
  start`` runs in production shape.
* :class:`HostedFabric` runs N in-process shard services (thread-pool
  model workers, each on its own background event loop) behind an
  in-process :class:`HostedRouter` — the zero-setup shape the tests and
  ``repro loadgen --router`` use, with :meth:`HostedFabric.kill_shard`
  as the failover drill trigger.

Both shapes speak the same wire protocol through the same router code,
so a drill passing against ``HostedFabric`` exercises the code paths the
process deployment runs.
"""

from __future__ import annotations

import asyncio
import os
import re
import select
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any

from ..serve.loadgen import HostedService
from ..serve.protocol import normalize_params
from ..serve.scheduler import query_key
from ..serve.server import ServeConfig
from .router import FabricRouter, RouterConfig, ShardSpec

__all__ = ["HostedFabric", "HostedRouter", "spawn_local_shards",
           "terminate_shards"]

#: matches the ``repro serve`` listen banner to learn the bound port
_BANNER_RE = re.compile(r"listening on ([^\s:]+):(\d+)")


class HostedRouter:
    """A FabricRouter on a background thread (mirrors HostedService)."""

    def __init__(self, router: FabricRouter) -> None:
        self.router = router
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self.address = loop.run_until_complete(self.router.start_tcp())
        except BaseException as exc:  # surface bind failures to the caller
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.router.stop())
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-fabric-router")
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        assert self.address is not None, "router failed to start"
        return self.address

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "HostedRouter":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


class HostedFabric:
    """N in-process shards behind an in-process router (tests, loadgen).

    Every shard runs a full :class:`CharacterizationService` (thread
    model pool) on its own background loop; the router consistent-hashes
    across them exactly as it would across processes.  ``address`` is
    the router endpoint once started.
    """

    def __init__(self, shards: int = 3, *, token: str | None = None,
                 persist: bool = False, store_dir: str | None = None,
                 probe_interval_s: float = 0.25,
                 shard_workers: int = 2,
                 router_config: RouterConfig | None = None) -> None:
        if shards < 1:
            raise ValueError("a fabric needs at least one shard")
        self.token = token
        self._configs = [
            ServeConfig(host="127.0.0.1", port=0, pool_mode="thread",
                        workers=shard_workers, batch_window_s=0.01,
                        shard_id=f"s{i}", token=token,
                        persist=persist, store_dir=store_dir)
            for i in range(shards)]
        self._router_config = router_config
        self._probe_interval_s = probe_interval_s
        self._shards: dict[str, HostedService] = {}
        self.router: FabricRouter | None = None
        self.hosted_router: HostedRouter | None = None
        self.address: tuple[str, int] | None = None

    def start(self) -> tuple[str, int]:
        specs = []
        try:
            for config in self._configs:
                hosted = HostedService(config)
                host, port = hosted.start()
                self._shards[config.shard_id] = hosted
                specs.append(ShardSpec(config.shard_id, host, port))
            config = self._router_config
            if config is None:
                config = RouterConfig(
                    host="127.0.0.1", port=0, token=self.token,
                    probe_interval_s=self._probe_interval_s)
            self.router = FabricRouter(specs, config)
            self.hosted_router = HostedRouter(self.router)
            self.address = self.hosted_router.start()
        except BaseException:
            self.stop()
            raise
        return self.address

    def stop(self) -> None:
        if self.hosted_router is not None:
            self.hosted_router.stop()
            self.hosted_router = None
        for hosted in self._shards.values():
            hosted.stop()
        self._shards.clear()

    def kill_shard(self, shard_id: str) -> None:
        """Abruptly kill one shard (connections reset, no drain)."""
        self._shards[shard_id].kill()

    def owner_of(self, kind: str, params: dict[str, Any] | None) -> str:
        """Which shard currently owns this query (the drill's victim)."""
        assert self.router is not None, "fabric not started"
        key = query_key(kind, normalize_params(kind, params))
        owner = self.router.ring.owner(key, self.router.alive_ids())
        assert owner is not None
        return owner

    def __enter__(self) -> "HostedFabric":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


# ------------------------------------------------------------- processes

def _await_banner(proc: subprocess.Popen, shard_id: str,
                  timeout_s: float) -> tuple[str, int]:
    """Read the shard's stdout until the listen banner names its port."""
    deadline = time.monotonic() + timeout_s
    collected: list[str] = []
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"shard {shard_id} exited with {proc.returncode} before "
                f"listening; output: {''.join(collected)[-2000:]!r}")
        ready, _, _ = select.select([proc.stdout], [], [], 0.25)
        if not ready:
            continue
        line = proc.stdout.readline()
        if not line:
            continue
        collected.append(line)
        match = _BANNER_RE.search(line)
        if match:
            return match.group(1), int(match.group(2))
    raise RuntimeError(
        f"shard {shard_id} did not report a listen address within "
        f"{timeout_s:.0f}s; output: {''.join(collected)[-2000:]!r}")


def spawn_local_shards(count: int, *, token: str | None = None,
                       store_dir: str | None = None,
                       pool: str = "process", workers: int = 2,
                       timeout_s: float = 60.0
                       ) -> tuple[list[subprocess.Popen],
                                  list[ShardSpec]]:
    """Launch N ``repro serve`` shard processes on ephemeral ports.

    The token travels via ``REPRO_SERVE_TOKEN`` (not argv, which is
    world-readable in a process listing).  Persistence is always on —
    the shards share ``store_dir`` so failover peers and restarts warm
    from each other's answers.
    """
    if count < 1:
        raise ValueError("a fabric needs at least one shard")
    env = dict(os.environ)
    # make the repro package importable in the children regardless of
    # how this process found it
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_root + (
            os.pathsep + existing if existing else "")
    if token is not None:
        env["REPRO_SERVE_TOKEN"] = token
    procs: list[subprocess.Popen] = []
    specs: list[ShardSpec] = []
    try:
        for i in range(count):
            shard_id = f"s{i}"
            cmd = [sys.executable, "-m", "repro", "serve",
                   "--host", "127.0.0.1", "--port", "0",
                   "--shard-id", shard_id, "--pool", pool,
                   "--workers", str(workers), "--persist"]
            if store_dir is not None:
                cmd += ["--store-dir", store_dir]
            proc = subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=env)
            procs.append(proc)
            host, port = _await_banner(proc, shard_id, timeout_s)
            specs.append(ShardSpec(shard_id, host, port))
    except BaseException:
        terminate_shards(procs)
        raise
    return procs, specs


def terminate_shards(procs: list[subprocess.Popen],
                     timeout_s: float = 10.0) -> None:
    """SIGTERM every shard (they drain), escalating to SIGKILL."""
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    deadline = time.monotonic() + timeout_s
    for proc in procs:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            proc.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5)
