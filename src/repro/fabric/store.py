"""Persistent served-result store: the shard LRU spilled through disk.

Each shard's :class:`~repro.serve.scheduler.Scheduler` keeps a bounded
in-memory served-result LRU.  With persistence on, every completed
answer is also written through :class:`~repro.perf.cache.ResultCache`
(atomic writes, checksum trailers, quarantine-on-corruption, the
injected ``cache.write_fail``/``cache.read_corrupt`` fault sites — all
for free), so a restarted shard answers its first repeat query from
disk instead of recomputing, and a failover shard can warm from a dead
peer's answers when they share a store directory.

Store keys mix :func:`~repro.perf.cache.package_source_token` into the
query's content key: any code change invalidates every persisted answer,
preserving the bit-identity contract — a stale answer from old code can
never be served by new code.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..perf.cache import ResultCache, content_key, package_source_token

__all__ = ["ServedResultStore"]

#: subdirectory (cache "kind") the served answers live under
STORE_KIND = "serve_results"


class ServedResultStore:
    """Disk-backed map from query content keys to served answers."""

    def __init__(self, directory: str | Path | None = None, *,
                 cache: ResultCache | None = None) -> None:
        if cache is None:
            # persistence was explicitly requested: force the disk tier
            # on even when REPRO_CACHE=0 disables the compute cache
            cache = ResultCache(directory, disk=True)
        self.cache = cache
        self.loads = 0
        self.hits = 0
        self.stores = 0

    @staticmethod
    def store_key(query_key: str) -> str:
        """The on-disk address of one served answer."""
        return content_key("serve.result", package_source_token(),
                           query_key)

    def load(self, query_key: str) -> tuple[bool, Any]:
        """(found, payload) for a previously served answer."""
        self.loads += 1
        found, payload = self.cache.peek(STORE_KIND,
                                         self.store_key(query_key))
        if found:
            self.hits += 1
        return found, payload

    def store(self, query_key: str, payload: Any) -> None:
        """Spill one served answer (best-effort, like all cache writes)."""
        self.stores += 1
        self.cache.put(STORE_KIND, self.store_key(query_key), payload)

    def counters(self) -> dict[str, int]:
        """Telemetry-friendly counters."""
        return {"loads": self.loads, "hits": self.hits,
                "stores": self.stores}
