"""The fabric router: consistent-hash placement over N serve shards.

One asyncio process accepts client connections speaking the ordinary
serve wire protocol (handshake first when a token is configured, then
JSON-lines queries) and forwards each query line — verbatim, so shard-
side coalescing and caching see exactly what a direct client would have
sent — to the shard owning the query's content key on a
:class:`~repro.fabric.ring.HashRing`.

Failure handling is replay, not apology: when the owning shard's
connection dies mid-query, the shard is marked down, its hash ranges
implicitly re-own to the next ring points, and the *same* request line
replays against the next owner.  Queries are idempotent (content-keyed,
deterministic answers), so a replay is safe and the reply is
bit-identical to what the dead shard would have said.  A background
probe loop pings every shard each interval, re-admitting recovered
shards; the deterministic fault sites ``fabric.shard_down`` (probe sees
a shard as dead for one round) and ``fabric.route_stale`` (route one
query on the pre-change membership view) drive exactly these paths in
chaos runs.

``ping`` and ``metrics`` are answered by the router itself — ``metrics``
returns the router's own counters plus per-shard health, which is what
``repro fabric status`` renders.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

from .. import faults
from ..serve.protocol import (
    ProtocolError,
    Response,
    decode_request,
    encode_handshake,
    encode_response,
)
from ..serve.scheduler import query_key
from ..serve.telemetry import Telemetry
from .auth import Authenticator, auth_gate, handshake_ok_line
from .ring import HashRing

__all__ = ["FabricRouter", "RouterConfig", "ShardSpec"]

#: the shard_id the router stamps on answers it produced itself
ROUTER_ID = "router"


@dataclass(frozen=True)
class ShardSpec:
    """Address of one serve shard."""

    shard_id: str
    host: str
    port: int


@dataclass(frozen=True)
class RouterConfig:
    """Everything ``repro fabric start`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 7440
    #: shared secret for both client->router and router->shard handshakes
    token: str | None = None
    #: per-token queries/second after the handshake (None disables)
    auth_rate: float | None = None
    auth_burst: float | None = None
    #: virtual nodes per shard on the ring
    replicas: int = 64
    probe_interval_s: float = 1.0
    probe_timeout_s: float = 2.0
    connect_timeout_s: float = 5.0
    #: per-forward reply deadline (covers the shard's own model time)
    shard_timeout_s: float = 60.0
    #: full passes over the candidate shards before giving up
    route_attempts: int = 3
    #: pause between passes (lets transient drops clear)
    route_backoff_s: float = 0.02


class _ShardLink:
    """One lazily-opened router->shard JSON-lines connection."""

    def __init__(self, spec: ShardSpec, token: str | None,
                 connect_timeout_s: float, reply_timeout_s: float) -> None:
        self.spec = spec
        self.token = token
        self.connect_timeout_s = connect_timeout_s
        self.reply_timeout_s = reply_timeout_s
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _open(self) -> None:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.spec.host, self.spec.port),
            self.connect_timeout_s)
        if self.token is not None:
            writer.write(encode_handshake(self.token).encode())
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(),
                                          self.reply_timeout_s)
            refused = True
            if line:
                try:
                    refused = not json.loads(line).get("ok")
                except ValueError:
                    pass
            if refused:
                writer.close()
                raise ConnectionError(
                    f"shard {self.spec.shard_id} refused the handshake")
        self._reader, self._writer = reader, writer

    async def ask(self, line: str) -> str:
        """Send one request line, await one reply line."""
        try:
            if self._writer is None:
                await self._open()
            assert self._writer is not None and self._reader is not None
            if not line.endswith("\n"):
                line += "\n"
            self._writer.write(line.encode())
            await self._writer.drain()
            reply = await asyncio.wait_for(self._reader.readline(),
                                           self.reply_timeout_s)
        except (OSError, asyncio.TimeoutError, ConnectionError):
            await self.close()
            raise
        except asyncio.CancelledError:
            await self.close()
            raise
        if not reply or not reply.endswith(b"\n"):
            await self.close()
            raise ConnectionError(
                f"shard {self.spec.shard_id} closed mid-reply")
        return reply.decode("utf-8", errors="replace")

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass


class FabricRouter:
    """Routes serve queries across shards; fails over on dead owners."""

    def __init__(self, shards: list[ShardSpec] | tuple[ShardSpec, ...],
                 config: RouterConfig | None = None) -> None:
        specs = list(shards)
        if not specs:
            raise ValueError("a fabric needs at least one shard")
        self.config = config if config is not None else RouterConfig()
        self.specs: dict[str, ShardSpec] = {}
        for spec in specs:
            if spec.shard_id in self.specs:
                raise ValueError(f"duplicate shard id {spec.shard_id!r}")
            self.specs[spec.shard_id] = spec
        self.ring = HashRing(list(self.specs),
                             replicas=self.config.replicas)
        self.telemetry = Telemetry()
        self.auth = None
        if self.config.token:
            self.auth = Authenticator(self.config.token,
                                      rate=self.config.auth_rate,
                                      burst=self.config.auth_burst)
        self._down: set[str] = set()
        #: membership view from before the last change (what a stale
        #: routing table would still believe); fabric.route_stale uses it
        self._stale_alive: tuple[str, ...] = tuple(self.specs)
        self._probe_round = 0
        self._tcp_server: asyncio.AbstractServer | None = None
        self._probe_task: asyncio.Task | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # ---------------------------------------------------------- membership
    def alive_ids(self) -> tuple[str, ...]:
        return tuple(sid for sid in self.specs if sid not in self._down)

    def _set_down(self, shard_id: str, down: bool) -> None:
        changed = (shard_id not in self._down) if down \
            else (shard_id in self._down)
        if not changed:
            return
        self._stale_alive = self.alive_ids()
        if down:
            self._down.add(shard_id)
            self.telemetry.inc("shard_down_total")
        else:
            self._down.discard(shard_id)
            self.telemetry.inc("shard_up_total")
        self.telemetry.gauge("shards_alive", len(self.alive_ids()))

    # ------------------------------------------------------------- routing
    async def _route(self, text: str,
                     links: dict[str, _ShardLink]) -> str:
        try:
            req = decode_request(text)
        except ProtocolError as exc:
            self.telemetry.inc("errors_total")
            return encode_response(Response(
                id=None, ok=False,
                error={"code": exc.code, "message": exc.message},
                served_by=ROUTER_ID, shard_id=ROUTER_ID))
        self.telemetry.inc("requests_total")
        if req.kind == "ping":
            return encode_response(Response(
                id=req.id, ok=True, result="pong",
                served_by=ROUTER_ID, shard_id=ROUTER_ID))
        if req.kind == "metrics":
            return encode_response(Response(
                id=req.id, ok=True, result=self.status_snapshot(),
                served_by=ROUTER_ID, shard_id=ROUTER_ID))

        key = query_key(req.kind, req.params)
        order = self.ring.owners(key, self.alive_ids())
        if faults.site("fabric.route_stale", key=key):
            # route on the membership view from before the last change,
            # then fall back to the current one — deterministically
            # exercising the replay path when the stale owner is gone
            self.telemetry.inc("stale_routes_total")
            stale = self.ring.owners(key, self._stale_alive)
            order = stale + [s for s in order if s not in stale]
        # last resort: shards currently marked down may be back already
        candidates = order + [s for s in self.specs if s not in order]

        replays = 0
        last_detail = "no shard configured"
        for attempt in range(max(1, self.config.route_attempts)):
            if attempt:
                await asyncio.sleep(self.config.route_backoff_s * attempt)
            for shard_id in candidates:
                try:
                    reply = await links[shard_id].ask(text)
                except (OSError, ConnectionError,
                        asyncio.TimeoutError) as exc:
                    self._set_down(shard_id, True)
                    self.telemetry.inc("failover_replays_total")
                    replays += 1
                    detail = str(exc) or type(exc).__name__
                    last_detail = f"shard {shard_id}: {detail}"
                    continue
                if replays:
                    self.telemetry.inc("failovers_total")
                return self._annotate(reply, shard_id, replays)
        self.telemetry.inc("errors_total")
        return encode_response(Response(
            id=req.id, ok=False,
            error={"code": "shard_unavailable",
                   "message": f"no shard could answer {req.kind!r} "
                              f"(last: {last_detail})"},
            served_by=ROUTER_ID, shard_id=ROUTER_ID))

    @staticmethod
    def _annotate(reply: str, shard_id: str, replays: int) -> str:
        """Stamp the answering shard (and replay count) onto the reply."""
        try:
            payload = json.loads(reply)
        except ValueError:
            return reply  # pass an unparseable reply through untouched
        if not isinstance(payload, dict):
            return reply
        payload.setdefault("shard_id", shard_id)
        if replays:
            payload["failover_replays"] = replays
        return json.dumps(payload, separators=(",", ":")) + "\n"

    # -------------------------------------------------------------- probes
    async def _probe(self, shard_id: str) -> bool:
        if faults.site("fabric.shard_down",
                       key=f"{shard_id}:{self._probe_round}"):
            # injected drill: this probe round sees the shard as dead,
            # so its hash ranges re-own until the next round revives it
            self.telemetry.inc("injected_shard_downs_total")
            return False
        link = _ShardLink(self.specs[shard_id], self.config.token,
                          self.config.connect_timeout_s,
                          self.config.probe_timeout_s)
        try:
            reply = await link.ask('{"kind":"ping"}\n')
        except (OSError, ConnectionError, asyncio.TimeoutError):
            return False
        finally:
            await link.close()
        try:
            return bool(json.loads(reply).get("ok"))
        except ValueError:
            return False

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            self._probe_round += 1
            self.telemetry.inc("probe_rounds_total")
            for shard_id in tuple(self.specs):
                healthy = await self._probe(shard_id)
                self._set_down(shard_id, not healthy)

    # ------------------------------------------------------------- status
    def status_snapshot(self) -> dict[str, Any]:
        """What ``repro fabric status`` renders (the metrics answer)."""
        snapshot = self.telemetry.snapshot()
        shards = {
            sid: {"host": spec.host, "port": spec.port,
                  "healthy": sid not in self._down}
            for sid, spec in self.specs.items()}
        return {"router": snapshot, "shards": shards,
                "ring": {"replicas": self.config.replicas,
                         "shards": len(self.specs)}}

    # --------------------------------------------------------- wire layer
    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.telemetry.inc("connections_total")
        self._writers.add(writer)
        links = {
            sid: _ShardLink(spec, self.config.token,
                            self.config.connect_timeout_s,
                            self.config.shard_timeout_s)
            for sid, spec in self.specs.items()}
        authed: str | None = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # an oversized line (no newline within the stream
                    # limit) cannot be parsed or resynchronized past:
                    # refuse this connection, keep accepting others
                    self.telemetry.inc("oversized_lines_total")
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # EOF cut the line mid-frame: a fragment is not a
                    # request — discard it rather than answer garbage
                    self.telemetry.inc("truncated_lines_total")
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                if self.auth is not None and authed is None:
                    reply, authed = auth_gate(self.auth, text, ROUTER_ID)
                    writer.write(reply.encode())
                    await writer.drain()
                    if authed is None:
                        self.telemetry.inc("auth_refused_total")
                        break
                    self.telemetry.inc("auth_ok_total")
                    continue
                if self.auth is not None \
                        and not self.auth.try_rate(authed):
                    self.telemetry.inc("token_rate_limited_total")
                    writer.write(encode_response(Response(
                        id=None, ok=False,
                        error={"code": "rate_limited",
                               "message": "per-token rate limit "
                                          "exceeded"},
                        served_by=ROUTER_ID,
                        shard_id=ROUTER_ID)).encode())
                    await writer.drain()
                    continue
                writer.write((await self._route(text, links)).encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # router shutdown: just close the connection
        finally:
            self._writers.discard(writer)
            for link in links.values():
                await link.close()
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass

    # ----------------------------------------------------------- lifecycle
    async def start_tcp(self) -> tuple[str, int]:
        """Bind, start probing, start serving; returns (host, port)."""
        from ..serve.server import require_loopback_or_token
        require_loopback_or_token(self.config.host,
                                  self.auth is not None, "fabric router")
        self._tcp_server = await asyncio.start_server(
            self._client_connected, self.config.host, self.config.port)
        sock = self._tcp_server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.telemetry.gauge("listen", f"{host}:{port}")
        self.telemetry.gauge("shards", len(self.specs))
        self.telemetry.gauge("shards_alive", len(self.alive_ids()))
        self._probe_task = asyncio.get_running_loop().create_task(
            self._probe_loop())
        return host, port

    async def stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for writer in list(self._writers):
            try:
                writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    async def serve_forever(self) -> None:
        """``repro fabric start``: run until cancelled."""
        assert self._tcp_server is not None, "call start_tcp() first"
        try:
            await self._tcp_server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()
