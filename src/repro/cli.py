"""Command-line interface: ``python -m repro <command>``.

Mirrors the artifact's shell scripts:

* ``quicktest``  — the four-workload quick test (Appendix A.1.2)
* ``full``       — the full ten-workload evaluation (Appendix A.3)
* ``perf``       — Figures 3-6 for chosen workloads/GPUs
* ``power``      — Figures 7-8
* ``accuracy``   — Table 6
* ``quadrants``  — Figure 2 classification
* ``roofline``   — Figure 9 points
* ``observations`` — the nine-observation audit
* ``suitability``— the algorithm-level MMU predictor on a sketch
* ``check``      — kernel lint, contract verifier, warp-hazard sanitizer
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .analysis.accuracy import accuracy_table
from .analysis.quadrants import classify
from .analysis.roofline import suite_roofline
from .analysis.suitability import KernelSketch, predict
from .gpu.device import Device
from .gpu.specs import get_gpu
from .harness.artifact import full_evaluation, quick_test
from .harness.report import (
    format_seconds,
    format_speedups,
    format_stage_timings,
    format_table,
)
from .harness.runner import run_performance, speedup_summary
from .kernels import Variant, all_workloads, get_workload
from .perf.instrument import stage_timings

__all__ = ["main", "build_parser"]


def _select_workloads(names: list[str] | None):
    if not names:
        return all_workloads()
    return [get_workload(n) for n in names]


def cmd_perf(args: argparse.Namespace) -> int:
    workloads = _select_workloads(args.workload)
    devices = [Device(g) for g in args.gpu]
    records = run_performance(workloads=workloads, devices=devices,
                              n_jobs=args.jobs)
    print(format_speedups(
        speedup_summary(records, Variant.TC, Variant.BASELINE),
        "TC speedup over baseline (Figure 4)"))
    print()
    print(format_speedups(
        speedup_summary(records, Variant.CC, Variant.TC),
        "CC speedup over TC (Figure 5)"))
    cce = speedup_summary(records, Variant.CCE, Variant.TC)
    if cce:
        print()
        print(format_speedups(cce, "CC-E speedup over TC (Figure 6)"))
    return 0


def cmd_power(args: argparse.Namespace) -> int:
    from .analysis.edp import edp_study
    device = Device(args.gpu[0])
    rows = []
    for w in _select_workloads(args.workload):
        for e in edp_study(w, device):
            rows.append([e.workload, e.variant, f"{e.avg_power_w:.0f} W",
                         f"{e.loop_time_s:.3f} s", f"{e.edp:.4g} J*s"])
    print(format_table(
        ["Workload", "Variant", "Avg power", "Loop", "EDP"], rows,
        title=f"EDP on {device.spec.name} (Figure 7)"))
    return 0


def cmd_accuracy(args: argparse.Namespace) -> int:
    device = Device(args.gpu[0])
    rows = []
    for w in _select_workloads(args.workload):
        if not w.floating_point:
            continue
        for e in accuracy_table(w, device):
            rows.append([e.workload, e.variant, f"{e.avg_error:.3E}",
                         f"{e.max_error:.3E}"])
    print(format_table(["Workload", "Variant", "Avg error", "Max error"],
                       rows, title="FP64 errors vs CPU serial (Table 6)"))
    return 0


def cmd_quadrants(args: argparse.Namespace) -> int:
    rows = []
    for w in _select_workloads(args.workload):
        p = classify(w)
        rows.append([w.name, f"{p.input_utilization:.2f}",
                     f"{p.output_utilization:.2f}", p.quadrant.value])
    print(format_table(["Workload", "Input util", "Output util",
                        "Quadrant"], rows,
                       title="MMU utilization quadrants (Figure 2)"))
    return 0


def cmd_roofline(args: argparse.Namespace) -> int:
    device = Device(args.gpu[0])
    roof = suite_roofline(_select_workloads(args.workload), device)
    rows = [[p.workload, p.variant, f"{p.intensity:.3g}",
             f"{p.performance / 1e12:.4g}", p.bottleneck]
            for p in roof.points]
    print(format_table(
        ["Workload", "Variant", "AI", "TFLOP/s", "Bound by"], rows,
        title=f"Roofline points on {device.spec.name} (Figure 9)"))
    return 0


def cmd_quicktest(args: argparse.Namespace) -> int:
    written = quick_test(args.out, gpu=args.gpu[0])
    for name, path in written.items():
        print(f"{name}: {path}")
    return 0


def cmd_full(args: argparse.Namespace) -> int:
    written = full_evaluation(args.out, gpu=args.gpu[0])
    for name, path in written.items():
        print(f"{name}: {path}")
    return 0


def cmd_observations(args: argparse.Namespace) -> int:
    from .analysis.observations import verify_all
    rows = []
    for r in verify_all(n_jobs=args.jobs):
        rows.append([f"O{r.number}", "holds" if r.holds else "FAILS",
                     r.statement])
    print(format_table(["Obs", "Verdict", "Statement"], rows,
                       title="The nine key observations, verified live"))
    return 0 if all("holds" in row[1] for row in rows) else 1


def cmd_suitability(args: argparse.Namespace) -> int:
    sketch = KernelSketch(
        name=args.name,
        essential_flops=args.flops,
        bytes_moved=args.bytes,
        mma_redundancy=args.redundancy,
        constant_operand=args.constant_operand,
        layout_traffic_factor=args.layout_factor,
        scattered_byte_fraction=args.scattered_fraction,
        serial_fraction=args.serial_fraction,
    )
    rows = []
    for g in args.gpu:
        p = predict(sketch, get_gpu(g))
        rows.append([g, format_seconds(p.tc_time_s),
                     format_seconds(p.baseline_time_s),
                     f"{p.speedup:.2f}x", p.tc_bottleneck,
                     p.verdict.value])
    print(format_table(
        ["GPU", "TC time", "Vector time", "Speedup", "TC bound by",
         "Verdict"], rows,
        title=f"MMU suitability of {sketch.name!r} "
              f"(AI {sketch.arithmetic_intensity:.2f} flop/B)"))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .check import Baseline, default_baseline_path, run_check
    baseline_path = args.baseline or default_baseline_path()
    if args.write_baseline:
        report = run_check(baseline=Baseline(), lint=not args.no_lint,
                           dynamic=not args.no_dynamic,
                           workloads=args.workload)
        Baseline.from_findings(
            report.active,
            justification="TODO: justify this accepted deviation",
        ).save(baseline_path)
        print(f"wrote {len(report.active)} suppression(s) to "
              f"{baseline_path}; fill in the justifications")
        return 0
    report = run_check(baseline=baseline_path, lint=not args.no_lint,
                       dynamic=not args.no_dynamic, workloads=args.workload)
    print(report.to_json() if args.format == "json" else report.to_text())
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import check_regression, run_bench, write_bench_json
    results = run_bench(args.bench or None, cache_dir=args.cache_dir,
                        profile=args.profile)
    for name, r in sorted(results.items()):
        print(f"{name}: cold {r['cold_s']:.1f}s, warm {r['warm_s']:.1f}s "
              f"({r['warm_speedup']}x)")
        groups = r.get("profile", {}).get("groups")
        if groups:
            print("  cold profile: "
                  + ", ".join(f"{k} {v:.1f}s" for k, v in groups.items()))
    out = write_bench_json(args.out, results)
    print(f"wrote {out}")
    if args.check:
        issues = check_regression(results, args.baseline,
                                  tolerance=args.tolerance)
        if issues:
            for msg in issues:
                print(f"PERF REGRESSION: {msg}")
            return 1
        print(f"perf gate: ok (within {args.tolerance:.0%} of "
              f"{args.baseline})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cubie reproduction: MMU characterization suite")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_perf_opts(p):
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the evaluation grid "
                            "(default: REPRO_JOBS or the CPU count)")
        p.add_argument("--timings", action="store_true",
                       help="print per-stage wall-clock after the run")

    def add_common(p):
        p.add_argument("--gpu", nargs="+", default=["A100", "H200", "B200"],
                       help="devices to evaluate (default: all three)")
        p.add_argument("--workload", nargs="*", default=None,
                       help="workloads (default: the whole suite)")

    for name, fn, desc in (
            ("perf", cmd_perf, "Figures 3-6 speedup summaries"),
            ("power", cmd_power, "Figure 7 EDP study"),
            ("accuracy", cmd_accuracy, "Table 6 FP64 errors"),
            ("quadrants", cmd_quadrants, "Figure 2 classification"),
            ("roofline", cmd_roofline, "Figure 9 points")):
        p = sub.add_parser(name, help=desc)
        add_common(p)
        if name == "perf":
            add_perf_opts(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("observations",
                       help="verify the paper's nine observations")
    add_perf_opts(p)
    p.set_defaults(fn=cmd_observations)

    p = sub.add_parser("check",
                       help="kernel lint + workload contracts + warp-"
                            "hazard sanitizer (docs/CHECK.md)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--baseline", default=None,
                   help="suppression baseline path "
                        "(default: check_baseline.json at the repo root)")
    p.add_argument("--write-baseline", action="store_true",
                   help="write current active findings as a new baseline "
                        "instead of reporting them")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the static layer (lint + contracts)")
    p.add_argument("--no-dynamic", action="store_true",
                   help="skip the warp-hazard battery")
    p.add_argument("--workload", nargs="*", default=None,
                   help="restrict the dynamic battery to these workloads")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("bench",
                       help="cold/warm pipeline benchmarks "
                            "(emits BENCH_perf.json)")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="output JSON path")
    p.add_argument("--bench", nargs="*", default=None,
                   help="bench names (default: all)")
    p.add_argument("--cache-dir", default=None,
                   help="cache root to benchmark against "
                        "(default: a fresh temporary directory)")
    p.add_argument("--profile", action="store_true",
                   help="attach the cold run's per-stage wall-clock "
                        "(plan-build / sweep-execute / model-resolve) to "
                        "each bench result")
    p.add_argument("--check", action="store_true",
                   help="compare cold times against a checked-in baseline "
                        "and fail on regression")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed fractional cold-time regression for "
                        "--check (default: 0.25)")
    p.add_argument("--baseline", default="BENCH_perf.json",
                   help="baseline JSON for --check "
                        "(default: BENCH_perf.json)")
    p.set_defaults(fn=cmd_bench)

    for name, fn, desc in (
            ("quicktest", cmd_quicktest,
             "artifact quick test (SpMV, Reduction, Scan, FFT)"),
            ("full", cmd_full, "artifact full evaluation")):
        p = sub.add_parser(name, help=desc)
        p.add_argument("--out", default=f"artifact_{name}",
                       help="output directory")
        p.add_argument("--gpu", nargs="+", default=["H200"])
        p.set_defaults(fn=fn)

    p = sub.add_parser("suitability",
                       help="predict MMU benefit from an algorithm sketch")
    p.add_argument("--name", default="custom-kernel")
    p.add_argument("--flops", type=float, required=True,
                   help="essential flops per execution")
    p.add_argument("--bytes", type=float, required=True,
                   help="bytes moved per execution")
    p.add_argument("--redundancy", type=float, default=1.0,
                   help="executed/essential flops when MMA-shaped")
    p.add_argument("--constant-operand", action="store_true")
    p.add_argument("--layout-factor", type=float, default=1.0)
    p.add_argument("--scattered-fraction", type=float, default=0.0,
                   help="fraction of vector traffic that is scattered "
                        "sub-sector gathers")
    p.add_argument("--serial-fraction", type=float, default=0.0)
    p.add_argument("--gpu", nargs="+", default=["A100", "H200", "B200"])
    p.set_defaults(fn=cmd_suitability)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rc = args.fn(args)
    if getattr(args, "timings", False):
        print()
        print(format_stage_timings(stage_timings()))
    # machine-readable stage dump for the bench profiler (subprocess runs
    # cannot share the in-process registry)
    stage_json = os.environ.get("REPRO_STAGE_JSON")
    if stage_json:
        payload = {t.name: {"seconds": t.seconds, "calls": t.calls}
                   for t in stage_timings()}
        Path(stage_json).write_text(json.dumps(payload, indent=2) + "\n",
                                    encoding="utf-8")
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
