"""Command-line interface: ``python -m repro <command>``.

Mirrors the artifact's shell scripts:

* ``quicktest``  — the four-workload quick test (Appendix A.1.2)
* ``full``       — the full ten-workload evaluation (Appendix A.3)
* ``perf``       — Figures 3-6 for chosen workloads/GPUs
* ``power``      — Figures 7-8
* ``accuracy``   — Table 6
* ``quadrants``  — Figure 2 classification
* ``roofline``   — Figure 9 points
* ``observations`` — the nine-observation audit
* ``suitability``— the algorithm-level MMU predictor on a sketch
* ``check``      — kernel lint, contract verifier, warp-hazard sanitizer

Beyond the artifact, the serving stack (docs/SERVE.md):

* ``serve``      — the async TCP characterization-query service
* ``query``      — one-shot client (``--local`` runs in-process)
* ``loadgen``    — closed-loop load generator + CI gate (``--chaos``
  drives it under an installed fault plan)
* ``cache``      — result-cache footprint: ``stats`` and LRU ``prune``
* ``sweep``      — size sweep with a per-point checkpoint journal;
  ``--resume`` continues a killed run bit-identically
* ``fabric``     — the sharded tier: ``start`` spawns N shard processes
  behind a consistent-hash router, ``status`` renders shard health
  (``loadgen --router N`` self-hosts the same fabric for drills)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .analysis.accuracy import accuracy_tables
from .analysis.quadrants import classify
from .analysis.roofline import suite_roofline
from .analysis.suitability import KernelSketch, predict
from .gpu.device import Device
from .gpu.specs import get_gpu
from .harness.artifact import full_evaluation, quick_test
from .harness.report import (
    format_seconds,
    format_si,
    format_speedups,
    format_stage_timings,
    format_table,
)
from .harness.runner import run_performance, speedup_summary
from .kernels import Variant, all_workloads, get_workload
from .perf.instrument import record_stage, stage, stage_meta, stage_timings

__all__ = ["main", "build_parser"]


def _select_workloads(names: list[str] | None):
    if not names:
        return all_workloads()
    return [get_workload(n) for n in names]


def cmd_perf(args: argparse.Namespace) -> int:
    workloads = _select_workloads(args.workload)
    devices = [Device(g) for g in args.gpu]
    records = run_performance(workloads=workloads, devices=devices,
                              n_jobs=args.jobs)
    print(format_speedups(
        speedup_summary(records, Variant.TC, Variant.BASELINE),
        "TC speedup over baseline (Figure 4)"))
    print()
    print(format_speedups(
        speedup_summary(records, Variant.CC, Variant.TC),
        "CC speedup over TC (Figure 5)"))
    cce = speedup_summary(records, Variant.CCE, Variant.TC)
    if cce:
        print()
        print(format_speedups(cce, "CC-E speedup over TC (Figure 6)"))
    return 0


def cmd_power(args: argparse.Namespace) -> int:
    from .analysis.edp import edp_study
    device = Device(args.gpu[0])
    rows = []
    for w in _select_workloads(args.workload):
        for e in edp_study(w, device):
            rows.append([e.workload, e.variant, f"{e.avg_power_w:.0f} W",
                         f"{e.loop_time_s:.3f} s", f"{e.edp:.4g} J*s"])
    print(format_table(
        ["Workload", "Variant", "Avg power", "Loop", "EDP"], rows,
        title=f"EDP on {device.spec.name} (Figure 7)"))
    return 0


def cmd_accuracy(args: argparse.Namespace) -> int:
    device = Device(args.gpu[0])
    workloads = _select_workloads(args.workload)
    tables = accuracy_tables(workloads, device,
                             n_jobs=getattr(args, "jobs", None))
    rows = []
    for w in workloads:
        for e in tables.get(w.name, ()):
            rows.append([e.workload, e.variant, f"{e.avg_error:.3E}",
                         f"{e.max_error:.3E}"])
    print(format_table(["Workload", "Variant", "Avg error", "Max error"],
                       rows, title="FP64 errors vs CPU serial (Table 6)"))
    return 0


def cmd_quadrants(args: argparse.Namespace) -> int:
    rows = []
    for w in _select_workloads(args.workload):
        p = classify(w)
        rows.append([w.name, f"{p.input_utilization:.2f}",
                     f"{p.output_utilization:.2f}", p.quadrant.value])
    print(format_table(["Workload", "Input util", "Output util",
                        "Quadrant"], rows,
                       title="MMU utilization quadrants (Figure 2)"))
    return 0


def cmd_roofline(args: argparse.Namespace) -> int:
    device = Device(args.gpu[0])
    roof = suite_roofline(_select_workloads(args.workload), device)
    rows = [[p.workload, p.variant, f"{p.intensity:.3g}",
             f"{p.performance / 1e12:.4g}", p.bottleneck]
            for p in roof.points]
    print(format_table(
        ["Workload", "Variant", "AI", "TFLOP/s", "Bound by"], rows,
        title=f"Roofline points on {device.spec.name} (Figure 9)"))
    return 0


def cmd_quicktest(args: argparse.Namespace) -> int:
    written = quick_test(args.out, gpu=args.gpu[0])
    for name, path in written.items():
        print(f"{name}: {path}")
    return 0


def cmd_full(args: argparse.Namespace) -> int:
    written = full_evaluation(args.out, gpu=args.gpu[0])
    for name, path in written.items():
        print(f"{name}: {path}")
    return 0


def cmd_observations(args: argparse.Namespace) -> int:
    from .analysis.observations import verify_all
    rows = []
    for r in verify_all(n_jobs=args.jobs):
        rows.append([f"O{r.number}", "holds" if r.holds else "FAILS",
                     r.statement])
    print(format_table(["Obs", "Verdict", "Statement"], rows,
                       title="The nine key observations, verified live"))
    return 0 if all("holds" in row[1] for row in rows) else 1


def cmd_suitability(args: argparse.Namespace) -> int:
    sketch = KernelSketch(
        name=args.name,
        essential_flops=args.flops,
        bytes_moved=args.bytes,
        mma_redundancy=args.redundancy,
        constant_operand=args.constant_operand,
        layout_traffic_factor=args.layout_factor,
        scattered_byte_fraction=args.scattered_fraction,
        serial_fraction=args.serial_fraction,
    )
    rows = []
    for g in args.gpu:
        p = predict(sketch, get_gpu(g))
        rows.append([g, format_seconds(p.tc_time_s),
                     format_seconds(p.baseline_time_s),
                     f"{p.speedup:.2f}x", p.tc_bottleneck,
                     p.verdict.value])
    print(format_table(
        ["GPU", "TC time", "Vector time", "Speedup", "TC bound by",
         "Verdict"], rows,
        title=f"MMU suitability of {sketch.name!r} "
              f"(AI {sketch.arithmetic_intensity:.2f} flop/B)"))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .check import Baseline, default_baseline_path, run_check
    from .check.determinism import facts_to_json
    baseline_path = args.baseline or default_baseline_path()
    determinism = args.determinism or args.facts is not None
    if args.write_baseline:
        report = run_check(baseline=Baseline(), lint=not args.no_lint,
                           dynamic=not args.no_dynamic,
                           workloads=args.workload,
                           determinism=determinism, n_jobs=args.jobs)
        Baseline.from_findings(
            report.active,
            justification="TODO: justify this accepted deviation",
        ).save(baseline_path)
        print(f"wrote {len(report.active)} suppression(s) to "
              f"{baseline_path}; fill in the justifications")
        return 0
    report = run_check(baseline=baseline_path, lint=not args.no_lint,
                       dynamic=not args.no_dynamic, workloads=args.workload,
                       determinism=determinism, n_jobs=args.jobs)
    if args.facts is not None and report.facts is not None:
        Path(args.facts).write_text(facts_to_json(report.facts))
    print(report.to_json() if args.format == "json" else report.to_text())
    if not report.ok:
        return 1
    if report.unused_suppressions:
        if args.prune_baseline:
            baseline = Baseline.load(baseline_path)
            stale = {(s.rule, s.path, s.symbol)
                     for s in report.unused_suppressions}
            baseline.suppressions = [
                s for s in baseline.suppressions
                if (s.rule, s.path, s.symbol) not in stale]
            baseline.save(baseline_path)
            print(f"pruned {len(stale)} stale suppression(s) from "
                  f"{baseline_path}")
            return 0
        print("stale suppressions gate the check; rerun with "
              "--prune-baseline to drop them", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import check_regression, run_bench, write_bench_json
    results = run_bench(args.bench or None, cache_dir=args.cache_dir,
                        profile=args.profile, jobs=args.jobs)
    for name, r in sorted(results.items()):
        print(f"{name}: cold {r['cold_s']:.1f}s, warm {r['warm_s']:.1f}s "
              f"({r['warm_speedup']}x)")
        prof = r.get("profile", {})
        groups = prof.get("groups")
        if groups:
            print("  cold profile: "
                  + ", ".join(f"{k} {v:.1f}s"
                              for k, v in sorted(groups.items(),
                                                 key=lambda kv: -kv[1])))
        if prof.get("coverage") is not None:
            print(f"  coverage: {prof['coverage']:.1%} of cold wall "
                  f"attributed to named stages")
        if r.get("overlap_ratio") is not None:
            print(f"  graph overlap: {r['overlap_ratio']:.2f}x "
                  f"(node wall / makespan, "
                  f"{r.get('graph_workers', 1)} workers)")
        stages = prof.get("stages")
        if stages and args.profile:
            top = sorted(stages.items(),
                         key=lambda kv: -kv[1]["self_seconds"])
            shown = [s for s in top[:12] if s[1]["self_seconds"] >= 0.01]
            for sname, rec in shown:
                print(f"    {rec['self_seconds']:7.3f}s self "
                      f"({rec['seconds']:7.3f}s incl, "
                      f"{rec['calls']:3d} calls)  {sname}")
            if len(top) > len(shown):
                print(f"    ... {len(top) - len(shown)} more stages")
    out = write_bench_json(args.out, results)
    print(f"wrote {out}")
    if args.check:
        issues = check_regression(results, args.baseline,
                                  tolerance=args.tolerance,
                                  require_budgets=True)
        if issues:
            for msg in issues:
                print(f"PERF REGRESSION: {msg}")
            return 1
        print(f"perf gate: ok (within {args.tolerance:.0%} of "
              f"{args.baseline})")
    return 0


def _parse_query_params(pairs: list[str]) -> dict:
    """``k=v`` pairs; values are JSON when parseable, strings otherwise."""
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param wants key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _resolve_token(value: str | None) -> str | None:
    """An explicit --token wins; REPRO_SERVE_TOKEN is the env fallback
    (the fabric launcher hands shards their secret this way — argv is
    world-readable in a process listing, the environment is not)."""
    return value or os.environ.get("REPRO_SERVE_TOKEN") or None


def _serve_config(args: argparse.Namespace):
    from .serve import ServeConfig
    return ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        pool_mode=args.pool, inner_jobs=args.inner_jobs,
        max_queue_depth=args.queue_depth, rate=args.rate, burst=args.burst,
        default_deadline_s=args.deadline,
        batch_window_s=args.batch_window,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        shard_id=args.shard_id, token=_resolve_token(args.token),
        auth_rate=args.auth_rate, auth_burst=args.auth_burst,
        persist=args.persist, store_dir=args.store_dir)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import CharacterizationService

    config = _serve_config(args)

    async def _main() -> None:
        service = CharacterizationService(config)
        try:
            host, port = await service.start_tcp()
        except ValueError as exc:
            # e.g. a non-loopback bind without a token: a config error,
            # not a crash — no traceback
            raise SystemExit(f"repro serve: {exc}") from None
        shard = f", shard {config.shard_id}" if config.shard_id else ""
        auth = ", token auth" if config.token else ""
        store = ", persistent store" if config.persist else ""
        print(f"repro serve: listening on {host}:{port} "
              f"({service.pool.mode} pool, {config.workers} workers"
              f"{shard}{auth}{store}); "
              f"Ctrl-C stops, SIGTERM drains")
        loop = asyncio.get_running_loop()
        forever = asyncio.ensure_future(service.serve_forever())

        def _drain() -> None:
            # stop accepting, let in-flight jobs finish (serve_forever's
            # finally runs stop(), which drains the scheduler), then exit
            print("repro serve: SIGTERM — draining in-flight queries",
                  file=sys.stderr)
            forever.cancel()

        try:
            loop.add_signal_handler(signal.SIGTERM, _drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal handlers (e.g. Windows loop)
        try:
            await forever
        finally:
            counters = service.telemetry.snapshot().get("counters", {})
            print("repro serve: drained; "
                  + json.dumps(counters, sort_keys=True), file=sys.stderr)

    asyncio.run(_main())
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from .serve import ProtocolError, ServeClient, ServeConnectionError
    from .serve.server import run_query_locally

    params = _parse_query_params(args.param)
    try:
        if args.local:
            resp = run_query_locally(args.kind, params,
                                     deadline_s=args.deadline,
                                     fresh=args.fresh)
        else:
            with ServeClient(args.host, args.port,
                             token=_resolve_token(args.token)) as client:
                resp = client.query(args.kind, params,
                                    deadline_s=args.deadline,
                                    fresh=args.fresh)
    except ServeConnectionError as exc:
        # typed connection failure: name the endpoint, shard, and retry
        # budget burned — machine-readable, no traceback
        print(json.dumps({"ok": False,
                          "error": {"code": exc.code,
                                    "message": exc.message,
                                    "host": exc.host, "port": exc.port,
                                    "shard_id": exc.shard_id,
                                    "retry_count": exc.retry_count}},
                         indent=2))
        return 1
    except ProtocolError as exc:
        print(json.dumps({"ok": False,
                          "error": {"code": exc.code,
                                    "message": exc.message}}, indent=2))
        return 1
    payload = {"ok": resp.ok, "served_by": resp.served_by,
               "stale": resp.stale,
               ("result" if resp.ok else "error"):
                   resp.result if resp.ok else resp.error}
    if resp.shard_id is not None:
        payload["shard_id"] = resp.shard_id
    if args.trace and resp.trace:
        payload["trace"] = resp.trace
    print(json.dumps(payload, indent=None if args.compact else 2))
    return 0 if resp.ok else 1


def cmd_loadgen(args: argparse.Namespace) -> int:
    import threading

    from . import faults
    from .serve import (
        DEFAULT_MIX,
        HostedService,
        format_loadgen_report,
        loadgen_failures,
        run_loadgen,
    )

    if args.kill_shard_after is not None and not args.router:
        raise SystemExit("--kill-shard-after needs --router: the drill "
                         "kills one shard of a self-hosted fabric")
    verify = args.verify
    client_retries = 2
    if args.chaos is not None:
        if not (args.self_host or args.router):
            raise SystemExit("--chaos needs --self-host or --router: the "
                             "fault plan must be installed in the server "
                             "process")
        rate = args.chaos
        if args.router:
            # fabric shards run thread pools (no worker_crash site) but
            # add the router's own failover and stale-routing drills
            plan = (f"serve.conn_drop={rate:g},"
                    f"cache.read_corrupt={rate:g},"
                    f"cache.write_fail={rate:g},"
                    f"fabric.shard_down={rate:g},"
                    f"fabric.route_stale={rate:g}")
        else:
            plan = (f"serve.conn_drop={rate:g},"
                    f"executor.worker_crash={rate:g},"
                    f"cache.read_corrupt={rate:g},"
                    f"cache.write_fail={rate:g}")
        faults.install_plan(f"{plan},seed={args.chaos_seed}")
        verify = True       # chaos without answer checking proves nothing
        client_retries = 8  # sustained drops need headroom to converge

    token = _resolve_token(args.token)

    def _run(host: str, port: int) -> dict:
        return run_loadgen(host, port, clients=args.clients,
                           duration_s=args.duration,
                           deadline_s=args.deadline, fresh=args.fresh,
                           verify=verify, client_retries=client_retries,
                           token=token)

    try:
        if args.router:
            from .fabric.cluster import HostedFabric

            fabric = HostedFabric(args.router, token=token,
                                  persist=args.persist,
                                  store_dir=args.store_dir,
                                  shard_workers=args.workers)
            with fabric:
                assert fabric.address is not None
                host, port = fabric.address
                timer = None
                if args.kill_shard_after is not None:
                    # kill the shard owning the mix's first query key:
                    # deterministic victim, guaranteed mid-drill traffic
                    kind, params = DEFAULT_MIX[0]
                    victim = fabric.owner_of(kind, params)
                    print(f"loadgen: killing shard {victim} "
                          f"{args.kill_shard_after:g}s into the run",
                          file=sys.stderr)
                    timer = threading.Timer(args.kill_shard_after,
                                            fabric.kill_shard, (victim,))
                    timer.daemon = True
                    timer.start()
                try:
                    summary = _run(host, port)
                finally:
                    if timer is not None:
                        timer.cancel()
        elif args.self_host:
            config = _serve_config(args)
            config = type(config)(**{**config.__dict__,
                                     "host": "127.0.0.1", "port": 0})
            with HostedService(config) as hosted:
                host, port = hosted.address
                summary = _run(host, port)
        else:
            summary = _run(args.host, args.port)
    finally:
        if args.chaos is not None:
            faults.clear_plan()
    print(format_loadgen_report(summary))
    failures = loadgen_failures(summary, p99_max_s=args.p99_max,
                                min_reuse_rate=args.min_reuse,
                                max_retry_rate=args.max_retry_rate)
    for failure in failures:
        print(f"LOADGEN GATE: {failure}")
    if not failures:
        print("loadgen gate: ok")
    return 1 if failures else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import hashlib

    from .harness.checkpoint import (
        SweepJournal,
        resumable_sweep,
        serialize_payload,
    )

    if args.resume and not args.journal:
        raise SystemExit("--resume needs --journal pointing at the "
                         "checkpoint file of the interrupted run")
    try:
        variants = tuple(Variant(v) for v in args.variant)
    except ValueError as exc:
        raise SystemExit(f"unknown variant: {exc}") from None
    journal = SweepJournal(args.journal) if args.journal else None
    reused = 0
    if journal is not None and args.resume:
        reused = len(journal.load())
    payload = resumable_sweep(args.workload, Device(args.gpu[0]), variants,
                              journal=journal, resume=args.resume,
                              n_jobs=args.jobs)
    text = serialize_payload(payload)
    digest = hashlib.sha256(text.encode()).hexdigest()
    n_points = len(payload["points"])
    print(f"sweep {args.workload}: {n_points} points "
          f"({reused} grid points resumed from journal), "
          f"crossover={payload['crossover']}, payload sha256={digest}",
          file=sys.stderr)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .perf.cache import ResultCache

    cache = ResultCache(args.cache_dir, max_disk_bytes=args.max_bytes)
    if args.cache_command == "stats":
        stats = cache.disk_stats()
        rows = [[kind, n, format_si(float(b), "B")]
                for kind, (n, b) in stats.kinds.items()]
        rows.append(["total", stats.total_entries,
                     format_si(float(stats.total_bytes), "B")])
        if stats.quarantined_entries:
            rows.append(["quarantined", stats.quarantined_entries,
                         format_si(float(stats.quarantined_bytes), "B")])
        cap = "unbounded" if stats.max_disk_bytes is None \
            else format_si(float(stats.max_disk_bytes), "B")
        print(format_table(["kind", "entries", "bytes"], rows,
                           title=f"result cache at {stats.directory} "
                                 f"(cap: {cap})"))
        return 0
    # prune
    if cache.max_disk_bytes is None:
        print("no cap: pass --max-bytes or set REPRO_CACHE_MAX_BYTES")
        return 1
    result = cache.prune()
    print(f"pruned {result.removed_entries} entries "
          f"({format_si(float(result.removed_bytes), 'B')}); "
          f"{result.remaining_entries} entries "
          f"({format_si(float(result.remaining_bytes), 'B')}) remain")
    return 0


def cmd_fabric(args: argparse.Namespace) -> int:
    token = _resolve_token(args.token)
    if args.fabric_command == "status":
        from .serve import ProtocolError, ServeClient

        try:
            with ServeClient(args.host, args.port, token=token) as client:
                resp = client.query("metrics")
        except ProtocolError as exc:
            print(json.dumps({"ok": False,
                              "error": {"code": exc.code,
                                        "message": exc.message}},
                             indent=2))
            return 1
        result = resp.result if resp.ok and isinstance(resp.result, dict) \
            else {}
        shards = result.get("shards")
        if not shards:
            # a plain serve process (or an error): dump what came back
            print(json.dumps(
                {"ok": resp.ok,
                 ("result" if resp.ok else "error"):
                     resp.result if resp.ok else resp.error}, indent=2))
            return 0 if resp.ok else 1
        rows = [[sid, info.get("host", "?"), info.get("port", "?"),
                 "up" if info.get("healthy") else "DOWN"]
                for sid, info in sorted(shards.items())]
        ring = result.get("ring", {})
        print(format_table(
            ["shard", "host", "port", "health"], rows,
            title=f"fabric at {args.host}:{args.port} "
                  f"({ring.get('replicas', '?')} ring replicas/shard)"))
        counters = (result.get("router") or {}).get("counters")
        if counters:
            print("router: " + json.dumps(counters, sort_keys=True))
        return 0

    # start: N shard processes + the router, foreground
    import asyncio
    import signal

    from .fabric.cluster import spawn_local_shards, terminate_shards
    from .fabric.router import FabricRouter, RouterConfig

    try:
        procs, specs = spawn_local_shards(
            args.shards, token=token, store_dir=args.store_dir,
            pool=args.pool, workers=args.workers)
    except (RuntimeError, ValueError) as exc:
        raise SystemExit(f"repro fabric: {exc}") from None
    try:
        router = FabricRouter(specs, RouterConfig(
            host=args.host, port=args.port, token=token,
            auth_rate=args.auth_rate, auth_burst=args.auth_burst,
            probe_interval_s=args.probe_interval))

        async def _main() -> None:
            try:
                host, port = await router.start_tcp()
            except ValueError as exc:
                raise SystemExit(f"repro fabric: {exc}") from None
            names = ", ".join(s.shard_id for s in specs)
            auth = "token auth" if token else "loopback only"
            print(f"repro fabric: router on {host}:{port} over "
                  f"{len(specs)} shard(s) [{names}] ({auth}); "
                  f"Ctrl-C stops, SIGTERM drains")
            loop = asyncio.get_running_loop()
            forever = asyncio.ensure_future(router.serve_forever())

            def _drain() -> None:
                print("repro fabric: SIGTERM — stopping the router",
                      file=sys.stderr)
                forever.cancel()

            try:
                loop.add_signal_handler(signal.SIGTERM, _drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platform without signal handlers
            try:
                await forever
            finally:
                counters = router.telemetry.snapshot().get("counters", {})
                print("repro fabric: stopped; "
                      + json.dumps(counters, sort_keys=True),
                      file=sys.stderr)

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass
    finally:
        terminate_shards(procs)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cubie reproduction: MMU characterization suite")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_perf_opts(p):
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the evaluation grid "
                            "(default: REPRO_JOBS or the CPU count)")
        p.add_argument("--timings", action="store_true",
                       help="print per-stage wall-clock after the run")

    def add_common(p):
        p.add_argument("--gpu", nargs="+", default=["A100", "H200", "B200"],
                       help="devices to evaluate (default: all three)")
        p.add_argument("--workload", nargs="*", default=None,
                       help="workloads (default: the whole suite)")

    for name, fn, desc in (
            ("perf", cmd_perf, "Figures 3-6 speedup summaries"),
            ("power", cmd_power, "Figure 7 EDP study"),
            ("accuracy", cmd_accuracy, "Table 6 FP64 errors"),
            ("quadrants", cmd_quadrants, "Figure 2 classification"),
            ("roofline", cmd_roofline, "Figure 9 points")):
        p = sub.add_parser(name, help=desc)
        add_common(p)
        if name in ("perf", "accuracy"):
            add_perf_opts(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("observations",
                       help="verify the paper's nine observations")
    add_perf_opts(p)
    p.set_defaults(fn=cmd_observations)

    p = sub.add_parser("check",
                       help="kernel lint + workload contracts + "
                            "determinism proof engine + warp-hazard "
                            "sanitizer (docs/CHECK.md)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--baseline", default=None,
                   help="suppression baseline path "
                        "(default: check_baseline.json at the repo root)")
    p.add_argument("--write-baseline", action="store_true",
                   help="write current active findings as a new baseline "
                        "instead of reporting them")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the static layer (lint + contracts)")
    p.add_argument("--no-dynamic", action="store_true",
                   help="skip the warp-hazard battery")
    p.add_argument("--determinism", action="store_true",
                   help="run the interprocedural taint engine "
                        "(D001-D006: cache/serve value purity, pool "
                        "dispatch purity, content-key completeness)")
    p.add_argument("--facts", default=None, metavar="PATH",
                   help="write determinism_facts.json here "
                        "(implies --determinism)")
    p.add_argument("--jobs", type=int, default=None,
                   help="fan per-file static analysis out over N "
                        "processes (output is bit-identical to serial)")
    p.add_argument("--prune-baseline", action="store_true",
                   help="drop stale baseline suppressions instead of "
                        "failing on them")
    p.add_argument("--workload", nargs="*", default=None,
                   help="restrict the dynamic battery to these workloads")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("bench",
                       help="cold/warm pipeline benchmarks "
                            "(emits BENCH_perf.json)")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="output JSON path")
    p.add_argument("--bench", nargs="*", default=None,
                   help="bench names (default: all)")
    p.add_argument("--cache-dir", default=None,
                   help="cache root to benchmark against "
                        "(default: a fresh temporary directory)")
    p.add_argument("--profile", action="store_true",
                   help="attach the cold run's per-stage wall-clock "
                        "(plan-build / sweep-execute / model-resolve) to "
                        "each bench result")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes inside each bench subprocess "
                        "(exported as REPRO_JOBS; default: inherit)")
    p.add_argument("--check", action="store_true",
                   help="compare cold times against a checked-in baseline "
                        "and fail on regression")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed fractional cold-time regression for "
                        "--check (default: 0.25)")
    p.add_argument("--baseline", default="BENCH_perf.json",
                   help="baseline JSON for --check "
                        "(default: BENCH_perf.json)")
    p.set_defaults(fn=cmd_bench)

    for name, fn, desc in (
            ("quicktest", cmd_quicktest,
             "artifact quick test (SpMV, Reduction, Scan, FFT)"),
            ("full", cmd_full, "artifact full evaluation")):
        p = sub.add_parser(name, help=desc)
        p.add_argument("--out", default=f"artifact_{name}",
                       help="output directory")
        p.add_argument("--gpu", nargs="+", default=["H200"])
        p.set_defaults(fn=fn)

    def add_serve_opts(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7341)
        p.add_argument("--workers", type=int, default=2,
                       help="model pool size (default: 2)")
        p.add_argument("--pool", choices=("process", "thread"),
                       default="process",
                       help="model pool kind (process pools degrade to "
                            "threads automatically where unavailable)")
        p.add_argument("--inner-jobs", type=int, default=1,
                       help="ParallelExecutor jobs inside one (batched) "
                            "perf grid evaluation")
        p.add_argument("--queue-depth", type=int, default=64,
                       help="max distinct in-flight model jobs")
        p.add_argument("--rate", type=float, default=None,
                       help="global queries/second (default: unlimited)")
        p.add_argument("--burst", type=float, default=None,
                       help="token-bucket burst (default: max(rate, 1))")
        p.add_argument("--deadline", type=float, default=30.0,
                       help="default per-query deadline, seconds")
        p.add_argument("--batch-window", type=float, default=0.005,
                       help="perf-query batching window, seconds")
        p.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures that trip a kind's "
                            "circuit breaker")
        p.add_argument("--breaker-cooldown", type=float, default=10.0,
                       help="seconds an open breaker waits before its "
                            "half-open probe")
        p.add_argument("--shard-id", default=None,
                       help="shard identity stamped into responses and "
                            "telemetry (fabric deployments)")
        p.add_argument("--token", default=None,
                       help="shared fabric secret; clients must open "
                            "with a handshake line (default: "
                            "REPRO_SERVE_TOKEN; required to bind "
                            "non-loopback hosts)")
        p.add_argument("--auth-rate", type=float, default=None,
                       help="per-token queries/second after the "
                            "handshake (default: unlimited)")
        p.add_argument("--auth-burst", type=float, default=None,
                       help="per-token bucket burst "
                            "(default: max(rate, 1))")
        p.add_argument("--persist", action="store_true",
                       help="spill the served-result LRU through the "
                            "result cache so a restarted shard warms "
                            "from disk")
        p.add_argument("--store-dir", default=None,
                       help="persistent store root for --persist "
                            "(default: the result-cache directory)")

    p = sub.add_parser("serve",
                       help="TCP characterization-query service "
                            "(docs/SERVE.md)")
    add_serve_opts(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("query",
                       help="one query against a server (or --local)")
    p.add_argument("kind",
                   help="query kind: perf, quadrant, accuracy, edp, "
                        "roofline, whatif, observations, metrics, ping")
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="query parameter (value parsed as JSON when "
                        "possible), e.g. --param workload=gemv or "
                        "--param 'workloads=[\"gemv\",\"spmv\"]'")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7341)
    p.add_argument("--token", default=None,
                   help="shared fabric secret for authenticated servers "
                        "(default: REPRO_SERVE_TOKEN)")
    p.add_argument("--local", action="store_true",
                   help="serve in-process instead of over TCP")
    p.add_argument("--deadline", type=float, default=None)
    p.add_argument("--fresh", action="store_true",
                   help="bypass the served-result cache")
    p.add_argument("--trace", action="store_true",
                   help="include the pipeline trace spans")
    p.add_argument("--compact", action="store_true",
                   help="single-line JSON output")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("loadgen",
                       help="closed-loop load generator "
                            "(non-zero exit on any protocol error)")
    add_serve_opts(p)
    p.add_argument("--self-host", action="store_true",
                   help="boot a server in-process on an ephemeral port "
                        "and drive that")
    p.add_argument("--router", type=int, default=None, metavar="N",
                   help="self-host N shards behind an in-process "
                        "consistent-hash router and drive that "
                        "(the fabric shape of --self-host)")
    p.add_argument("--kill-shard-after", type=float, default=None,
                   metavar="S",
                   help="kill the shard owning the mix's first query "
                        "key S seconds into the run (needs --router; "
                        "the failover drill)")
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--duration", type=float, default=10.0,
                   help="seconds of closed-loop load")
    p.add_argument("--fresh", action="store_true",
                   help="bypass the served-result cache (saturation mode)")
    p.add_argument("--p99-max", type=float, default=None,
                   help="fail when p99 latency exceeds this bound, "
                        "seconds")
    p.add_argument("--min-reuse", type=float, default=None,
                   help="fail when the coalesce-or-cache rate is below "
                        "this fraction")
    p.add_argument("--chaos", type=float, default=None, metavar="RATE",
                   help="install a fault plan firing conn drops, worker "
                        "crashes, and cache corruption at RATE — plus "
                        "shard-down and stale-route injections under "
                        "--router (implies --verify; needs --self-host "
                        "or --router)")
    p.add_argument("--chaos-seed", type=int, default=7,
                   help="fault-plan seed for --chaos (default: 7)")
    p.add_argument("--verify", action="store_true",
                   help="digest every OK answer against the in-process "
                        "deterministic reference; any mismatch fails")
    p.add_argument("--max-retry-rate", type=float, default=None,
                   help="fail when connection retries exceed this "
                        "fraction of completed requests")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser("sweep",
                       help="size sweep with per-point checkpoint journal "
                            "(kill-safe; --resume continues)")
    p.add_argument("workload",
                   help="size-parameterized workload: gemm, gemv, fft, "
                        "stencil, scan, reduction")
    p.add_argument("--gpu", nargs="+", default=["H200"])
    p.add_argument("--variant", nargs="*", default=["baseline", "tc"],
                   help="variants to evaluate (default: baseline tc)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or CPUs)")
    p.add_argument("--journal", default=None,
                   help="JSON-lines checkpoint file; each completed grid "
                        "point is journaled durably")
    p.add_argument("--resume", action="store_true",
                   help="reuse points already in --journal instead of "
                        "recomputing them")
    p.add_argument("--out", default=None,
                   help="write the canonical payload here instead of "
                        "stdout")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("cache",
                       help="result-cache footprint: stats and LRU prune")
    p.add_argument("cache_command", choices=("stats", "prune"))
    p.add_argument("--cache-dir", default=None,
                   help="cache root (default: REPRO_CACHE_DIR or "
                        "~/.cache/repro)")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="size cap for prune (default: "
                        "REPRO_CACHE_MAX_BYTES)")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("fabric",
                       help="sharded serve tier: consistent-hash router "
                            "over N shard processes (docs/SERVE.md)")
    fabric_sub = p.add_subparsers(dest="fabric_command", required=True)
    pf = fabric_sub.add_parser(
        "start", help="spawn N shard processes on ephemeral ports and "
                      "run the router in the foreground")
    pf.add_argument("--shards", type=int, default=3,
                    help="shard process count (default: 3)")
    pf.add_argument("--host", default="127.0.0.1",
                    help="router bind host (non-loopback needs --token)")
    pf.add_argument("--port", type=int, default=7440,
                    help="router port (default: 7440)")
    pf.add_argument("--token", default=None,
                    help="shared fabric secret for client and shard "
                         "handshakes (default: REPRO_SERVE_TOKEN)")
    pf.add_argument("--auth-rate", type=float, default=None,
                    help="per-token queries/second at the router")
    pf.add_argument("--auth-burst", type=float, default=None,
                    help="per-token bucket burst (default: max(rate, 1))")
    pf.add_argument("--store-dir", default=None,
                    help="shared persistent-store root the shards spill "
                         "served results into (default: the result-cache "
                         "directory)")
    pf.add_argument("--pool", choices=("process", "thread"),
                    default="process", help="shard model-pool kind")
    pf.add_argument("--workers", type=int, default=2,
                    help="model workers per shard (default: 2)")
    pf.add_argument("--probe-interval", type=float, default=1.0,
                    help="seconds between shard health probes")
    pf.set_defaults(fn=cmd_fabric)
    pf = fabric_sub.add_parser(
        "status", help="render a router's shard-health snapshot")
    pf.add_argument("--host", default="127.0.0.1")
    pf.add_argument("--port", type=int, default=7440)
    pf.add_argument("--token", default=None,
                    help="shared fabric secret "
                         "(default: REPRO_SERVE_TOKEN)")
    pf.set_defaults(fn=cmd_fabric)

    p = sub.add_parser("suitability",
                       help="predict MMU benefit from an algorithm sketch")
    p.add_argument("--name", default="custom-kernel")
    p.add_argument("--flops", type=float, required=True,
                   help="essential flops per execution")
    p.add_argument("--bytes", type=float, required=True,
                   help="bytes moved per execution")
    p.add_argument("--redundancy", type=float, default=1.0,
                   help="executed/essential flops when MMA-shaped")
    p.add_argument("--constant-operand", action="store_true")
    p.add_argument("--layout-factor", type=float, default=1.0)
    p.add_argument("--scattered-fraction", type=float, default=0.0,
                   help="fraction of vector traffic that is scattered "
                        "sub-sector gathers")
    p.add_argument("--serial-fraction", type=float, default=0.0)
    p.add_argument("--gpu", nargs="+", default=["A100", "H200", "B200"])
    p.set_defaults(fn=cmd_suitability)
    return parser


def main(argv: list[str] | None = None) -> int:
    # the bench harness stamps the spawn time so interpreter startup
    # (imports dominate it) is attributed instead of landing in ``other``
    bench_t0 = os.environ.get("REPRO_BENCH_T0")
    if bench_t0:
        try:
            import time
            record_stage("cli.startup", max(time.time() - float(bench_t0),
                                            0.0))
        except ValueError:
            pass
    args = build_parser().parse_args(argv)
    # an explicit --jobs wins everywhere: exporting it as REPRO_JOBS makes
    # every scheduler and executor constructed deeper in the call stack
    # (graph scheduler, nested fan-outs, bench subprocesses) resolve to
    # the same width instead of falling back to the CPU count
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    try:
        with stage(f"cli.{args.command}"):
            rc = args.fn(args)
    except KeyboardInterrupt:
        # worker pools re-raise a clean KeyboardInterrupt after
        # cancelling pending chunks (perf.executor); no tracebacks
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout went away (e.g. `repro query ... | head`); exit quietly
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141  # 128 + SIGPIPE
    if getattr(args, "timings", False):
        print()
        print(format_stage_timings(stage_timings()))
        workers = stage_meta().get("max_workers")
        if workers:
            print(f"effective worker processes: {workers}")
    # machine-readable stage dump for the bench profiler (subprocess runs
    # cannot share the in-process registry)
    stage_json = os.environ.get("REPRO_STAGE_JSON")
    if stage_json:
        payload = {
            "stages": {t.name: {"seconds": t.seconds, "calls": t.calls,
                                "self_seconds": t.self_seconds}
                       for t in stage_timings()},
            "meta": stage_meta(),
        }
        Path(stage_json).write_text(json.dumps(payload, indent=2) + "\n",
                                    encoding="utf-8")
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
