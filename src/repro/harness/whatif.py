"""What-if architecture exploration.

The conclusion of the paper asks GPU roadmaps to "preserve and materially
strengthen FP64 MMU capability".  This module gives architecture
researchers the tool to test such proposals: take a real spec, scale any
subset of its resources (FP64 tensor peak, vector peak, DRAM bandwidth,
launch overhead, ...), and re-evaluate any workload set on the
hypothetical part — the generalization of the peak-ratio ablation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..gpu.device import Device
from ..gpu.specs import GPUSpec, get_gpu
from ..kernels.base import Variant, Workload

__all__ = ["hypothetical", "WhatIfResult", "evaluate_whatif"]

_SCALABLE = {
    "tc_fp64": "tc_fp64",
    "cc_fp64": "cc_fp64",
    "tc_fp16": "tc_fp16",
    "tc_b1": "tc_b1",
    "dram_bw": "dram_bw",
    "l1_bw": "l1_bw",
    "launch_overhead_s": "launch_overhead_s",
    "stage_latency_s": "stage_latency_s",
}


def hypothetical(base: GPUSpec | str, name: str | None = None,
                 **scales: float) -> GPUSpec:
    """A spec derived from ``base`` with resources scaled.

    ``hypothetical("B200", tc_fp64=2.0)`` is a Blackwell whose FP64
    tensor peak is doubled; any field in ``tc_fp64, cc_fp64, tc_fp16,
    tc_b1, dram_bw, l1_bw, launch_overhead_s, stage_latency_s`` accepts a
    positive multiplier.
    """
    if isinstance(base, str):
        base = get_gpu(base)
    changes: dict[str, float] = {}
    for key, factor in scales.items():
        if key not in _SCALABLE:
            raise ValueError(
                f"cannot scale {key!r}; scalable: {sorted(_SCALABLE)}")
        if factor <= 0:
            raise ValueError(f"scale for {key} must be positive")
        changes[key] = getattr(base, key) * factor
    label = name or (base.name + "*"
                     + ",".join(f"{k}x{v:g}" for k, v in scales.items()))
    return dataclasses.replace(base, name=label, **changes)


@dataclass(frozen=True)
class WhatIfResult:
    """Per-workload effect of a hypothetical architecture change."""

    workload: str
    variant: str
    base_time_s: float
    whatif_time_s: float

    @property
    def speedup(self) -> float:
        return self.base_time_s / self.whatif_time_s


def evaluate_whatif(workloads: list[Workload], base: GPUSpec | str,
                    whatif: GPUSpec,
                    variant: Variant = Variant.TC) -> list[WhatIfResult]:
    """Compare every workload's representative case on base vs whatif."""
    base_dev = Device(base if isinstance(base, GPUSpec) else get_gpu(base))
    new_dev = Device(whatif)
    results = []
    for w in workloads:
        v = w.resolve_variant(variant)
        if v not in w.variants():
            continue
        case = w.representative_case()
        stats = w.analytic_stats(v, case)
        results.append(WhatIfResult(
            workload=w.name,
            variant=v.value,
            base_time_s=base_dev.timing.time(stats),
            whatif_time_s=new_dev.timing.time(stats),
        ))
    return results
