"""Evaluation runner: workloads x variants x cases x GPUs.

This is the programmatic equivalent of the artifact's ``run_perf.sh`` —
it evaluates the analytic model at paper scale for every combination and
returns structured records the report layer formats into the paper's
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Quadrant, Variant, Workload
from ..kernels import all_workloads

__all__ = ["PerfRecord", "run_performance", "speedup_summary",
           "default_devices"]


@dataclass(frozen=True)
class PerfRecord:
    """One point of Figure 3."""

    gpu: str
    workload: str
    quadrant: Quadrant
    variant: str
    case: str
    time_s: float
    #: useful (essential) flops per second; 0 for the bit-only BFS
    flops: float
    power_w: float
    energy_j: float
    bottleneck: str
    dram_bytes: float
    arithmetic_intensity: float


def default_devices() -> list[Device]:
    return [Device("A100"), Device("H200"), Device("B200")]


def run_performance(workloads: list[Workload] | None = None,
                    devices: list[Device] | None = None
                    ) -> list[PerfRecord]:
    """Evaluate every (gpu, workload, variant, case) combination."""
    if workloads is None:
        workloads = all_workloads()
    if devices is None:
        devices = default_devices()
    records: list[PerfRecord] = []
    for dev in devices:
        for w in workloads:
            for case in w.cases():
                for variant in w.variants():
                    stats = w.analytic_stats(variant, case)
                    r = dev.resolve(stats)
                    records.append(PerfRecord(
                        gpu=dev.spec.name,
                        workload=w.name,
                        quadrant=w.quadrant,
                        variant=variant.value,
                        case=case.label,
                        time_s=r.time_s,
                        flops=r.flops,
                        power_w=r.power_w,
                        energy_j=r.energy_j,
                        bottleneck=r.breakdown.bottleneck,
                        dram_bytes=stats.dram_bytes,
                        arithmetic_intensity=stats.arithmetic_intensity(),
                    ))
    return records


def speedup_summary(records: list[PerfRecord], numerator: Variant,
                    denominator: Variant) -> dict[tuple[str, str], float]:
    """Per (gpu, workload) mean of time(denominator)/time(numerator)
    across the five cases — the bars of Figures 4-6."""
    times: dict[tuple[str, str, str, str], float] = {}
    for r in records:
        times[(r.gpu, r.workload, r.variant, r.case)] = r.time_s
    out: dict[tuple[str, str], float] = {}
    pairs = sorted({(r.gpu, r.workload) for r in records})
    for gpu, wname in pairs:
        ratios = []
        for r in records:
            if r.gpu != gpu or r.workload != wname:
                continue
            if r.variant != numerator.value:
                continue
            denom = times.get((gpu, wname, denominator.value, r.case))
            if denom is None:
                continue
            ratios.append(denom / r.time_s)
        if ratios:
            out[(gpu, wname)] = float(np.mean(ratios))
    return out
