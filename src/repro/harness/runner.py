"""Evaluation runner: workloads x variants x cases x GPUs.

This is the programmatic equivalent of the artifact's ``run_perf.sh`` —
it evaluates the analytic model at paper scale for every combination and
returns structured records the report layer formats into the paper's
figures.

The grid is embarrassingly parallel, so it routes through
:class:`~repro.perf.executor.ParallelExecutor`: one task per workload
evaluates all cases, variants, and devices, with ``analytic_stats``
hoisted out of the device loop (counters are device-independent — only
``Device.resolve`` varies per GPU).  Records are reassembled in the
canonical device-major order, so serial (``n_jobs=1``) and parallel runs
return identical records in identical order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import Device
from ..graph import GraphScheduler, TaskGraph, TaskNode, graph_enabled
from ..kernels.base import Quadrant, Variant, Workload
from ..kernels import all_workloads
from ..perf.executor import ParallelExecutor
from ..perf.instrument import stage

__all__ = ["PerfRecord", "build_performance_graph", "run_performance",
           "speedup_summary", "default_devices"]


@dataclass(frozen=True)
class PerfRecord:
    """One point of Figure 3."""

    gpu: str
    workload: str
    quadrant: Quadrant
    variant: str
    case: str
    time_s: float
    #: useful (essential) flops per second; 0 for the bit-only BFS
    flops: float
    power_w: float
    energy_j: float
    bottleneck: str
    dram_bytes: float
    arithmetic_intensity: float


def default_devices() -> list[Device]:
    return [Device("A100"), Device("H200"), Device("B200")]


def _workload_records(task: tuple[Workload, list[Device]]
                      ) -> list[list[PerfRecord]]:
    """Evaluate one workload on every device; returns per-device record
    lists in (case, variant) order.  The analytic counters are computed
    once per (case, variant) — they are device-independent — and resolved
    against each device's models."""
    w, devices = task
    per_device: list[list[PerfRecord]] = [[] for _ in devices]
    for case in w.cases():
        for variant in w.variants():
            try:
                stats = w.analytic_stats(variant, case)
            except Exception as exc:
                raise RuntimeError(
                    f"analytic_stats failed for {w.name} "
                    f"[{variant.value}/{case.label}]") from exc
            intensity = stats.arithmetic_intensity()
            for out, dev in zip(per_device, devices):
                r = dev.resolve(stats)
                out.append(PerfRecord(
                    gpu=dev.spec.name,
                    workload=w.name,
                    quadrant=w.quadrant,
                    variant=variant.value,
                    case=case.label,
                    time_s=r.time_s,
                    flops=r.flops,
                    power_w=r.power_w,
                    energy_j=r.energy_j,
                    bottleneck=r.breakdown.bottleneck,
                    dram_bytes=stats.dram_bytes,
                    arithmetic_intensity=intensity,
                ))
    return per_device


def build_performance_graph(workloads: list[Workload],
                            devices: list[Device]) -> TaskGraph:
    """The paper-scale grid as a task graph: one independent
    ``perf:<workload>`` node per workload (kind ``perf-grid``), each
    evaluating all cases, variants, and devices.  No edges — the grid
    is embarrassingly parallel — but as graph nodes they interleave
    with whatever else shares the scheduler (e.g. serve's batched
    queries)."""
    g = TaskGraph()
    for w in workloads:
        g.add(TaskNode(key=f"perf:{w.name}", kind="perf-grid",
                       fn=_workload_records, args=((w, devices),),
                       label=f"perf {w.name}"))
    return g


def run_performance(workloads: list[Workload] | None = None,
                    devices: list[Device] | None = None,
                    *, n_jobs: int | None = None,
                    executor: ParallelExecutor | None = None,
                    mode: str | None = None) -> list[PerfRecord]:
    """Evaluate every (gpu, workload, variant, case) combination.

    The default path drains :func:`build_performance_graph` through the
    :class:`~repro.graph.GraphScheduler`; ``mode="staged"``,
    ``REPRO_GRAPH=0``, or an explicit ``executor`` selects the legacy
    staged fan-out.  Records come back in device-major order (device,
    workload, case, variant) regardless of mode or ``n_jobs``.
    """
    if workloads is None:
        workloads = all_workloads()
    if devices is None:
        devices = default_devices()
    if executor is None and graph_enabled(mode):
        graph = build_performance_graph(workloads, devices)
        with stage("harness.run_performance"):
            results = GraphScheduler(n_jobs).run(graph)
        per_workload = [results[f"perf:{w.name}"] for w in workloads]
    else:
        ex = executor if executor is not None else ParallelExecutor(n_jobs)
        with stage("harness.run_performance"):
            per_workload = ex.map(_workload_records,
                                  [(w, devices) for w in workloads],
                                  chunk_size=1,
                                  labels=[w.name for w in workloads])
    records: list[PerfRecord] = []
    for di in range(len(devices)):
        for wi in range(len(workloads)):
            records.extend(per_workload[wi][di])
    return records


def speedup_summary(records: list[PerfRecord], numerator: Variant,
                    denominator: Variant) -> dict[tuple[str, str], float]:
    """Per (gpu, workload) mean of time(denominator)/time(numerator)
    across the five cases — the bars of Figures 4-6."""
    times: dict[tuple[str, str, str, str], float] = {}
    for r in records:
        times[(r.gpu, r.workload, r.variant, r.case)] = r.time_s
    out: dict[tuple[str, str], float] = {}
    pairs = sorted({(r.gpu, r.workload) for r in records})
    for gpu, wname in pairs:
        ratios = []
        for r in records:
            if r.gpu != gpu or r.workload != wname:
                continue
            if r.variant != numerator.value:
                continue
            denom = times.get((gpu, wname, denominator.value, r.case))
            if denom is None:
                continue
            ratios.append(denom / r.time_s)
        if ratios:
            out[(gpu, wname)] = float(np.mean(ratios))
    return out
