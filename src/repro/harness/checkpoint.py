"""Resumable size sweeps: a JSON-lines checkpoint journal per grid point.

``repro sweep`` runs can die — an OOM kill, a pre-empted node, the
``sweep.kill`` chaos site — and a full size sweep is expensive enough
that starting over is wasteful.  :class:`SweepJournal` checkpoints each
completed grid point as one JSON line keyed by its *content key* (the
workload, size, variants, GPU, and a digest of the package source), and
:func:`resumable_sweep` consults the journal before computing: journaled
points are reused verbatim, missing ones are computed and appended.

The contract chaos CI enforces: a sweep SIGKILLed mid-run and resumed
with ``repro sweep --resume`` produces a payload *byte-identical* to the
uninterrupted run.  Three properties make that hold:

* every evaluation is deterministic (analytic models, fixed seeds), so a
  recomputed point equals the journaled one bit-for-bit;
* floats round-trip JSON exactly (``repr``-shortest), so a point read
  back from the journal serializes to the same bytes as a fresh one;
* content keys mix in :func:`~repro.perf.cache.package_source_token`, so
  a journal written by different code is silently ignored rather than
  resumed into a stale payload.

Appends are flushed and fsynced per line, and loads skip a torn final
line, so a kill at any instant loses at most the point being written.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .. import faults
from ..gpu.device import Device
from ..kernels.base import Variant
from ..perf.cache import content_key, package_source_token
from ..perf.executor import ParallelExecutor
from .sweep import SIZE_SWEEPS, SweepPoint, _sweep_size, find_crossover

__all__ = ["SweepJournal", "point_key", "resumable_sweep",
           "serialize_payload"]


def point_key(name: str, size: int, variants: tuple[Variant, ...],
              gpu_name: str) -> str:
    """Content key of one grid point (stable across processes/machines)."""
    return content_key("sweep.point", name, size,
                       [v.value for v in variants], gpu_name,
                       package_source_token())


class SweepJournal:
    """Append-only JSON-lines checkpoint file, one completed point per line.

    Each line is ``{"key": <content key>, "points": [<point dict>...]}``
    serialized canonically (sorted keys, compact separators).  Duplicate
    keys keep the last occurrence; unparseable or torn lines (the write
    that was racing the kill) are skipped, not fatal.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self) -> dict[str, list[dict]]:
        """Journaled ``{key: points}`` records; empty if no journal yet."""
        records: dict[str, list[dict]] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:  # torn tail from a mid-write kill
                continue
            if isinstance(rec, dict) and isinstance(rec.get("key"), str) \
                    and isinstance(rec.get("points"), list):
                records[rec["key"]] = rec["points"]
        return records

    def append(self, key: str, points: list[dict]) -> None:
        """Durably journal one completed grid point."""
        line = json.dumps({"key": key, "points": points}, sort_keys=True,
                          separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def clear(self) -> None:
        """Start a fresh journal (used when resuming is not requested)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def _point_dict(p: SweepPoint) -> dict:
    return {"workload": p.workload, "size": p.size, "variant": p.variant,
            "time_s": p.time_s, "flops": p.flops}


def resumable_sweep(name: str, device: Device,
                    variants: tuple[Variant, ...] = (Variant.BASELINE,
                                                     Variant.TC),
                    *, journal: SweepJournal | None = None,
                    resume: bool = False,
                    n_jobs: int | None = None,
                    executor: ParallelExecutor | None = None) -> dict:
    """A size sweep that checkpoints per grid point and can resume.

    Returns the payload dict ``{workload, gpu, variants, points,
    crossover}``.  With a ``journal``, each completed grid point is
    appended durably; with ``resume=True``, points already journaled
    (under matching content keys — same code, same grid point) are reused
    instead of recomputed.  The ``sweep.kill`` fault site fires after a
    fresh point is journaled, modelling SIGKILL at the worst instant.
    """
    if name not in SIZE_SWEEPS:
        raise ValueError(f"no size sweep for {name!r}; available: "
                         f"{sorted(SIZE_SWEEPS)}")
    sizes = SIZE_SWEEPS[name][2]
    gpu_name = device.spec.name
    keys = {s: point_key(name, s, variants, gpu_name) for s in sizes}
    done: dict[str, list[dict]] = {}
    if journal is not None:
        if resume:
            journaled = journal.load()
            done = {k: journaled[k] for k in keys.values() if k in journaled}
        else:
            journal.clear()
    pending = [s for s in sizes if keys[s] not in done]
    if pending:
        ex = executor if executor is not None else ParallelExecutor(n_jobs)
        computed = ex.map(_sweep_size,
                          [(name, s, device, variants) for s in pending],
                          chunk_size=1)
        fresh = {keys[s]: [_point_dict(p) for p in chunk]
                 for s, chunk in zip(pending, computed)}
    else:
        fresh = {}
    points: list[dict] = []
    for s in sizes:
        key = keys[s]
        if key in done:
            points.extend(done[key])
            continue
        record = fresh[key]
        if journal is not None:
            journal.append(key, record)
            if faults.site("sweep.kill"):
                os._exit(9)  # SIGKILL stand-in: no cleanup, no atexit
        points.extend(record)
    sweep_points = [SweepPoint(**p) for p in points]
    crossover = find_crossover(sweep_points)
    return {
        "workload": name,
        "gpu": gpu_name,
        "variants": [v.value for v in variants],
        "points": points,
        "crossover": crossover,
    }


def serialize_payload(payload: dict) -> str:
    """Canonical payload bytes — what the kill-and-resume gate compares."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"
