"""Evaluation harness: the runner and report formatting used by the
figure/table regenerators in ``benchmarks/``."""

from .artifact import evaluate, full_evaluation, quick_test
from .report import (
    format_seconds,
    format_si,
    format_speedups,
    format_stage_timings,
    format_table,
)
from .sweep import SIZE_SWEEPS, SweepPoint, find_crossover, sweep_sizes
from .whatif import WhatIfResult, evaluate_whatif, hypothetical
from .runner import (
    PerfRecord,
    default_devices,
    run_performance,
    speedup_summary,
)

__all__ = [
    "evaluate",
    "full_evaluation",
    "quick_test",
    "format_seconds",
    "format_si",
    "format_speedups",
    "format_stage_timings",
    "format_table",
    "WhatIfResult",
    "evaluate_whatif",
    "hypothetical",
    "SIZE_SWEEPS",
    "SweepPoint",
    "find_crossover",
    "sweep_sizes",
    "PerfRecord",
    "default_devices",
    "run_performance",
    "speedup_summary",
]
