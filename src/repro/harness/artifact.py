"""Artifact-style evaluation flows (Appendix A of the paper).

The paper's artifact ships a ``runme.sh`` that runs, in sequence, a
compilation check, the performance evaluation (Figures 3-6), the power
evaluation (Figures 7-8), and the accuracy evaluation (Table 6), writing
results under ``Cubie/script/``; a ``quick_test`` variant covers four
representative workloads (SpMV, Reduction, Scan, FFT) in ~30 minutes.

This module is that script: :func:`quick_test` and :func:`full_evaluation`
produce the same set of outputs — ``Figure3_perf`` ... ``Figure8_power``
and ``all_error.csv`` — as text/CSV files in an output directory.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from ..analysis.accuracy import accuracy_table
from ..analysis.edp import edp_study, power_trace_study, quadrant_geomeans
from ..gpu.device import Device
from ..kernels.base import Variant, Workload
from ..kernels import all_workloads, get_workload
from ..perf.instrument import stage
from .report import format_seconds, format_speedups, format_table
from .runner import run_performance, speedup_summary

__all__ = ["QUICK_TEST_WORKLOADS", "quick_test", "full_evaluation",
           "evaluate"]

#: the artifact's quick test covers these four workloads (Appendix A.1.2)
QUICK_TEST_WORKLOADS = ("spmv", "reduction", "scan", "fft")


def _perf_outputs(workloads: list[Workload]) -> dict[str, str]:
    records = run_performance(workloads=workloads)
    out: dict[str, str] = {}
    rows = [[r.gpu, r.workload, r.case, r.variant,
             format_seconds(r.time_s),
             f"{r.flops / 1e12:.4f}" if r.flops else "-"]
            for r in records]
    out["Figure3_perf"] = format_table(
        ["GPU", "Workload", "Case", "Variant", "Time", "TFLOP/s"],
        rows, title="Figure 3: absolute performance")
    out["Figure4_TCvsBaseline"] = format_speedups(
        speedup_summary(records, Variant.TC, Variant.BASELINE),
        "Figure 4: TC speedup over baseline")
    out["Figure5_CCvsTC"] = format_speedups(
        speedup_summary(records, Variant.CC, Variant.TC),
        "Figure 5: CC speedup over TC")
    cce = speedup_summary(records, Variant.CCE, Variant.TC)
    if cce:
        out["Figure6_CCEvsTC"] = format_speedups(
            cce, "Figure 6: CC-E speedup over TC")
    return out


def _power_outputs(workloads: list[Workload], device: Device
                   ) -> dict[str, str]:
    entries = []
    trace_rows = []
    for w in workloads:
        entries.extend(edp_study(w, device))
        for variant, tr in power_trace_study(w, device).items():
            trace_rows.append([w.name, variant,
                               f"{tr.duration_s:.3f} s",
                               f"{tr.average_power_w:.0f} W",
                               f"{tr.energy_j:.4g} J"])
    edp_rows = [[e.workload, e.variant, f"{e.repeats:,}",
                 f"{e.loop_time_s:.3f} s", f"{e.avg_power_w:.0f} W",
                 f"{e.edp:.4g} J*s"] for e in entries]
    table = format_table(
        ["Workload", "Variant", "Repeats", "Loop time", "Avg power",
         "EDP"], edp_rows,
        title=f"Figure 7: EDP on {device.spec.name}")
    gm = quadrant_geomeans(entries)
    gm_rows = [[q.value, v, f"{edp:.4g} J*s"]
               for q, per in sorted(gm.items(), key=lambda kv: kv[0].value)
               for v, edp in sorted(per.items())]
    if gm_rows:
        table += "\n\n" + format_table(["Quadrant", "Variant",
                                        "Geomean EDP"], gm_rows)
    power = format_table(
        ["Workload", "Variant", "Window", "Avg power", "Energy"],
        trace_rows, title=f"Figure 8: power traces on {device.spec.name}")
    return {"Figure7_edp": table, "Figure8_power": power}


def _error_csv(workloads: list[Workload], device: Device) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["workload", "variant", "average_error", "max_error",
                     "samples"])
    for w in workloads:
        if not w.floating_point:
            continue
        for e in accuracy_table(w, device):
            writer.writerow([e.workload, e.variant,
                             f"{e.avg_error:.6E}", f"{e.max_error:.6E}",
                             e.samples])
    return buf.getvalue()


def evaluate(workload_names: list[str] | None, out_dir: str | Path,
             gpu: str = "H200") -> dict[str, Path]:
    """Run the artifact flow over selected workloads; returns the written
    files keyed by artifact name."""
    if workload_names is None:
        workloads = all_workloads()
    else:
        workloads = [get_workload(n) for n in workload_names]
    device = Device(gpu)
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    artifacts: dict[str, str] = {}
    with stage("harness.perf_outputs"):
        artifacts.update(_perf_outputs(workloads))
    with stage("harness.power_outputs"):
        artifacts.update(_power_outputs(workloads, device))
    with stage("harness.error_csv"):
        artifacts["all_error"] = _error_csv(workloads, device)
    written: dict[str, Path] = {}
    with stage("harness.write_artifacts"):
        for name, text in artifacts.items():
            suffix = ".csv" if name == "all_error" else ".txt"
            path = out_path / f"{name}{suffix}"
            path.write_text(text + "\n", encoding="utf-8")
            written[name] = path
    return written


def quick_test(out_dir: str | Path, gpu: str = "H200") -> dict[str, Path]:
    """The artifact's ~30-minute quick test: SpMV, Reduction, Scan, FFT."""
    return evaluate(list(QUICK_TEST_WORKLOADS), out_dir, gpu=gpu)


def full_evaluation(out_dir: str | Path,
                    gpu: str = "H200") -> dict[str, Path]:
    """The artifact's full ten-workload evaluation."""
    return evaluate(None, out_dir, gpu=gpu)
