"""Problem-size sweeps and crossover analysis.

The paper's Figure 3 shows per-case absolute performance; the interesting
derived question — *from what problem size on does the MMU version win?* —
is answered here.  Size-parameterized workloads sweep a geometric size
grid, and :func:`find_crossover` locates the smallest size where the TC
variant beats the baseline (small problems are launch-latency-bound, where
MMUs cannot help).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..gpu.device import Device
from ..graph import GraphScheduler, TaskGraph, TaskNode, graph_enabled
from ..kernels.base import Variant, Workload, WorkloadCase
from ..kernels.fft import FftWorkload
from ..kernels.gemm import GemmWorkload
from ..kernels.gemv import GemvWorkload
from ..kernels.reduction import ReductionWorkload
from ..kernels.scan import ScanWorkload
from ..kernels.stencil import StencilWorkload
from ..perf.executor import ParallelExecutor
from ..perf.instrument import stage

__all__ = ["SweepPoint", "SIZE_SWEEPS", "build_sweep_graph", "sweep_sizes",
           "find_crossover"]


@dataclass(frozen=True)
class SweepPoint:
    """One (size, variant) evaluation."""

    workload: str
    size: int
    variant: str
    time_s: float
    flops: float


def _gemm_case(s: int) -> WorkloadCase:
    return WorkloadCase(label=str(s), params={"m": s, "n": s, "k": s})


def _gemv_case(s: int) -> WorkloadCase:
    return WorkloadCase(label=str(s), params={"m": s, "n": 16})


def _fft_case(s: int) -> WorkloadCase:
    return WorkloadCase(label=str(s),
                        params={"n1": 256, "n2": 1, "batch": s})


def _stencil_case(s: int) -> WorkloadCase:
    return WorkloadCase(label=str(s),
                        params={"kind": "star2d1r", "nx": s, "ny": s,
                                "nz": 1})


def _scan_case(s: int) -> WorkloadCase:
    return WorkloadCase(label=str(s), params={"segment": 1024, "n": s})


#: size-parameterized workloads: (workload factory, case builder, sizes)
SIZE_SWEEPS: dict[str, tuple[Callable[[], Workload],
                             Callable[[int], WorkloadCase],
                             tuple[int, ...]]] = {
    "gemm": (GemmWorkload, _gemm_case,
             (32, 64, 128, 256, 512, 1024, 2048, 4096)),
    "gemv": (GemvWorkload, _gemv_case,
             (256, 1024, 4096, 16384, 65536, 262144)),
    "fft": (FftWorkload, _fft_case, (8, 64, 512, 4096, 32768)),
    "stencil": (StencilWorkload, _stencil_case,
                (64, 256, 1024, 4096, 16384)),
    "scan": (ScanWorkload, _scan_case,
             (1 << 12, 1 << 16, 1 << 20, 1 << 24)),
    "reduction": (ReductionWorkload, _scan_case,
                  (1 << 12, 1 << 16, 1 << 20, 1 << 24)),
}


def _sweep_size(task: tuple[str, int, Device, tuple[Variant, ...]]
                ) -> list[SweepPoint]:
    """Evaluate every requested variant at one sweep size (worker task)."""
    name, s, device, variants = task
    factory, case_of, _ = SIZE_SWEEPS[name]
    w = factory()
    case = case_of(s)
    points = []
    for v in variants:
        if v not in w.variants():
            continue
        r = device.resolve(w.analytic_stats(v, case))
        points.append(SweepPoint(workload=name, size=s,
                                 variant=v.value, time_s=r.time_s,
                                 flops=r.flops))
    return points


def build_sweep_graph(name: str, device: Device,
                      variants: tuple[Variant, ...]) -> TaskGraph:
    """One size sweep as a task graph: an independent
    ``sweep:<name>:<size>`` node per grid point (kind ``sweep-point``).
    Sizes are zero-padded to a fixed width so the scheduler's
    smallest-key-first tie-break follows numeric sweep order."""
    g = TaskGraph()
    for s in SIZE_SWEEPS[name][2]:
        g.add(TaskNode(key=f"sweep:{name}:{s:010d}", kind="sweep-point",
                       fn=_sweep_size, args=((name, s, device, variants),),
                       label=f"sweep {name} n={s}"))
    return g


def sweep_sizes(name: str, device: Device,
                variants: tuple[Variant, ...] = (Variant.BASELINE,
                                                 Variant.TC),
                *, n_jobs: int | None = None,
                executor: ParallelExecutor | None = None,
                mode: str | None = None) -> list[SweepPoint]:
    """Evaluate a workload's analytic model across its size grid.

    The default path drains :func:`build_sweep_graph` through the
    :class:`~repro.graph.GraphScheduler`; ``mode="staged"``,
    ``REPRO_GRAPH=0``, or an explicit ``executor`` selects the legacy
    staged fan-out (``resumable_sweep`` always does: its journal
    semantics are per-chunk).  Points come back in (size, variant)
    order regardless of mode or ``n_jobs``.
    """
    if name not in SIZE_SWEEPS:
        raise ValueError(
            f"no size sweep for {name!r}; available: "
            f"{sorted(SIZE_SWEEPS)}")
    sizes = SIZE_SWEEPS[name][2]
    if executor is None and graph_enabled(mode):
        graph = build_sweep_graph(name, device, variants)
        with stage("harness.sweep_sizes"):
            results = GraphScheduler(n_jobs).run(graph)
        per_size = [results[f"sweep:{name}:{s:010d}"] for s in sizes]
        return [p for chunk in per_size for p in chunk]
    ex = executor if executor is not None else ParallelExecutor(n_jobs)
    with stage("harness.sweep_sizes"):
        per_size = ex.map(_sweep_size,
                          [(name, s, device, variants) for s in sizes],
                          chunk_size=1)
    return [p for chunk in per_size for p in chunk]


def find_crossover(points: list[SweepPoint],
                   challenger: str = "tc",
                   incumbent: str = "baseline") -> int | None:
    """Smallest sweep size at which the challenger is strictly faster and
    stays faster for all larger sizes.  None if it never settles ahead."""
    by_size: dict[int, dict[str, float]] = {}
    for p in points:
        by_size.setdefault(p.size, {})[p.variant] = p.time_s
    sizes = sorted(by_size)
    crossover: int | None = None
    for s in sizes:
        pair = by_size[s]
        if challenger not in pair or incumbent not in pair:
            continue
        if pair[challenger] < pair[incumbent]:
            if crossover is None:
                crossover = s
        else:
            crossover = None  # fell behind again; keep looking
    return crossover
