"""Text rendering of the paper's tables and figure series.

Every figure/table regenerator in ``benchmarks/`` prints through these
helpers so the output matches the rows/series the paper reports.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..perf.instrument import StageTiming

__all__ = ["format_table", "format_speedups", "format_si", "format_seconds",
           "format_stage_timings"]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """1234567 -> '1.23 M<unit>' (engineering prefixes)."""
    prefixes = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")]
    for scale, prefix in prefixes:
        if abs(value) >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}"
    return f"{value:.{digits}g} {unit}".rstrip()


def format_seconds(t: float) -> str:
    if t >= 1.0:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    return f"{t * 1e6:.2f} us"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with column alignment."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_stage_timings(timings: Sequence[StageTiming]) -> str:
    """Render the per-stage wall-clock registry as a nesting tree.

    Children print indented under their parent, siblings in descending
    inclusive order.  ``Share`` is each stage's *self* time over the
    total attributed self time, so the column sums to ~100% instead of
    double-counting nested spans.  Records without self-time breakdowns
    (hand-built, or merged from older dumps) fall back to inclusive
    shares.
    """
    total_self = sum(t.self_seconds for t in timings)
    use_self = total_self > 0

    def _share_basis(t: StageTiming) -> float:
        return t.self_seconds if use_self else t.seconds

    total = total_self if use_self else \
        sum(t.seconds for t in timings if "/" not in t.name)
    by_parent: dict[str, list[StageTiming]] = {}
    for t in timings:
        parent = t.name.rsplit("/", 1)[0] if "/" in t.name else ""
        by_parent.setdefault(parent, []).append(t)
    rows: list[list[object]] = []

    def _walk(parent: str, depth: int) -> None:
        for t in sorted(by_parent.get(parent, []),
                        key=lambda t: -t.seconds):
            rows.append(["  " * depth + t.leaf, format_seconds(t.seconds),
                         format_seconds(t.self_seconds), t.calls,
                         f"{_share_basis(t) / total:.0%}"
                         if total > 0 else "-"])
            _walk(t.name, depth + 1)

    _walk("", 0)
    return format_table(["Stage", "Wall", "Self", "Calls", "Share"], rows,
                        title="Pipeline stage timings")


def format_speedups(speedups: dict[tuple[str, str], float],
                    title: str) -> str:
    """Render a {(gpu, workload): speedup} map grouped by workload."""
    gpus = sorted({g for g, _ in speedups})
    workloads = []
    for _, w in speedups:
        if w not in workloads:
            workloads.append(w)
    rows = []
    for w in workloads:
        rows.append([w] + [f"{speedups.get((g, w), float('nan')):.2f}x"
                           for g in gpus])
    return format_table(["workload"] + gpus, rows, title=title)
