"""Deterministic input generation: LINPACK-style LCG randomness, synthetic
SuiteSparse stand-ins (Tables 3-4), and population sweeps (Figure 10)."""

from .graphs import (
    BFS_GRAPHS,
    GraphInfo,
    generate_graph,
    graph_info,
    graph_to_csr,
    kronecker_edges,
    mycielskian,
)
from .populations import graph_population, matrix_population
from .suitesparse import (
    SPMV_MATRICES,
    MatrixInfo,
    generate_matrix,
    matrix_info,
)
from .synthetic import Lcg, default_rng

__all__ = [
    "BFS_GRAPHS",
    "GraphInfo",
    "generate_graph",
    "graph_info",
    "graph_to_csr",
    "kronecker_edges",
    "mycielskian",
    "graph_population",
    "matrix_population",
    "SPMV_MATRICES",
    "MatrixInfo",
    "generate_matrix",
    "matrix_info",
    "Lcg",
    "default_rng",
]
