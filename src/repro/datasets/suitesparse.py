"""Synthetic stand-ins for the SuiteSparse matrices of Table 4.

The machine this reproduction runs on has no network access to the
SuiteSparse collection, so each of the five matrices used by SpMV and
SpGEMM is replaced by a deterministic generator that reproduces the
properties the kernels are sensitive to: exact row count, nonzero count
within ~2%, and the structural family (banded FEM fill, multi-diagonal
seismic grids, dense row blocks, QCD lattice coupling, symmetric stiffness
bands).  Generators accept a ``scale`` factor for quick tests; ``scale=1``
matches Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..perf.cache import content_key, default_cache, source_token
from ..perf.instrument import stage
from ..sparse.csr import CsrMatrix
from .synthetic import Lcg

__all__ = ["MatrixInfo", "SPMV_MATRICES", "generate_matrix", "matrix_info"]


@dataclass(frozen=True)
class MatrixInfo:
    """Catalog entry mirroring one row of Table 4."""

    name: str
    rows: int
    nnz: int
    group: str
    family: str


SPMV_MATRICES: tuple[MatrixInfo, ...] = (
    MatrixInfo("spmsrtls", 29995, 229947, "GHS_indef", "banded-indefinite"),
    MatrixInfo("Chevron1", 37365, 330633, "Chevron", "seismic-grid"),
    MatrixInfo("raefsky3", 21200, 1488768, "Simon", "dense-row-blocks"),
    MatrixInfo("conf5_4-8x8-10", 49152, 1916928, "QCD", "qcd-lattice"),
    MatrixInfo("bcsstk39", 46772, 2089294, "Boeing", "stiffness-band"),
)

_BY_NAME = {m.name: m for m in SPMV_MATRICES}


def matrix_info(name: str) -> MatrixInfo:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown matrix {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


# --------------------------------------------------------------------------
def _expand_node_blocks(nrows: np.ndarray, ncols: np.ndarray, n: int,
                        rng: Lcg, dof: int = 4) -> CsrMatrix:
    """Expand node-graph edges into dense dof x dof blocks — the structure
    FEM/saddle-point matrices actually have, and what the mBSR format (and
    the paper's SpGEMM results) rely on."""
    pairs = len(nrows)
    local = np.arange(dof, dtype=np.int64)
    li = np.tile(np.repeat(local, dof), pairs)
    lj = np.tile(np.tile(local, dof), pairs)
    rows = np.repeat(nrows * dof, dof * dof) + li
    cols = np.repeat(ncols * dof, dof * dof) + lj
    keep = (rows < n) & (cols < n)
    vals = rng.uniform(int(keep.sum()))
    return CsrMatrix.from_coo(rows[keep], cols[keep], vals, (n, n))


def _banded_indefinite(n: int, nnz_target: int, rng: Lcg) -> CsrMatrix:
    """GHS_indef style: saddle-point structure of dense 2x2 node blocks on
    a tridiagonal node band plus long-range constraint couplings.  The
    2-dof blocks give the moderate mBSR fill real GHS matrices show."""
    dof = 2
    nodes = n // dof
    base = np.arange(nodes, dtype=np.int64)
    nrows = [base, base[:-1], base[1:]]
    ncols = [base, base[1:], base[:-1]]
    base_pairs = 3 * nodes - 2
    extra = max(nnz_target // (dof * dof) - base_pairs, 0)
    if extra:
        # saddle couplings to the constraint half of the node set
        src = rng.integers(extra, 0, nodes)
        off = rng.integers(extra, 1, max(nodes // 2, 2))
        tgt = (src + nodes // 2 + off) % nodes
        nrows.append(src)
        ncols.append(tgt)
    return _expand_node_blocks(np.concatenate(nrows), np.concatenate(ncols),
                               n, rng, dof=dof)


def _seismic_grid(n: int, nnz_target: int, rng: Lcg) -> CsrMatrix:
    """Chevron style: 2-D grid stencil over 2-dof nodes (dense 2x2
    blocks), with extra diagonal couplings to hit the nonzero budget."""
    dof = 2
    nodes = n // dof
    side = max(int(np.sqrt(nodes)), 2)
    base = np.arange(nodes, dtype=np.int64)
    # take as many stencil arms as the nonzero budget affords (3..5)
    n_off = int(np.clip(nnz_target // (dof * dof * nodes), 3, 5))
    offsets = [0, -1, 1, -side, side][:n_off]
    nrows, ncols = [], []
    for off in offsets:
        nrows.append(base)
        ncols.append(np.clip(base + off, 0, nodes - 1))
    extra = max(nnz_target // (dof * dof) - len(offsets) * nodes, 0)
    if extra:
        src = rng.integers(extra, 0, nodes)
        diag = rng.choice_mask(extra, 0.5)
        tgt = np.clip(src + np.where(diag, side + 1, -side - 1),
                      0, nodes - 1)
        nrows.append(src)
        ncols.append(tgt)
    return _expand_node_blocks(np.concatenate(nrows), np.concatenate(ncols),
                               n, rng, dof=dof)


def _dense_row_blocks(n: int, nnz_target: int, rng: Lcg) -> CsrMatrix:
    """raefsky3 style: wide bands of dense 4x4 blocks (fluid-structure
    meshes with ~70 nonzeros per row)."""
    dof = 4
    nodes = n // dof
    deg = max(nnz_target // (n * dof), 4)
    base = np.repeat(np.arange(nodes, dtype=np.int64), deg)
    band = 2 * deg
    offs = rng.integers(nodes * deg, -band, band + 1)
    tgt = np.clip(base + offs, 0, nodes - 1)
    return _expand_node_blocks(base, tgt, n, rng)


def _qcd_lattice(n: int, nnz_target: int, rng: Lcg) -> CsrMatrix:
    """conf5 style: 4-D lattice of 12-component sites (3 colors x 4 spins),
    each row coupling inside its site block and to 6 neighbor blocks —
    exactly 39 nonzeros per row like the original."""
    comp = 12
    sites = n // comp
    side = max(int(round(sites ** 0.25)), 2)
    per_block = 6  # couplings taken per neighbor block
    row_site = np.repeat(np.arange(sites, dtype=np.int64), comp)
    rows = np.arange(sites * comp, dtype=np.int64)
    coords = np.stack(np.unravel_index(row_site, (side,) * 4), axis=1)
    cols_parts = [
        # 3 in-site couplings (same color triplet)
        (row_site * comp)[:, None] + (rows % comp)[:, None] // 3 * 3
        + np.arange(3)[None, :],
    ]
    for dim in range(4):
        for sign in (-1, 1):
            nb = coords.copy()
            nb[:, dim] = (nb[:, dim] + sign) % side
            nb_site = np.ravel_multi_index(
                (nb[:, 0], nb[:, 1], nb[:, 2], nb[:, 3]), (side,) * 4)
            base = nb_site * comp
            if len(cols_parts) <= 6:  # only 6 of the 8 neighbors (even-odd)
                cols_parts.append(
                    base[:, None]
                    + (((rows % comp)[:, None] // 4 * 4
                        + np.arange(per_block)[None, :]) % comp))
    cols = np.concatenate(cols_parts, axis=1)
    nnz_per_row = cols.shape[1]
    rows_full = np.repeat(rows, nnz_per_row)
    cols_full = cols.reshape(-1)
    vals = rng.uniform(len(rows_full))
    return CsrMatrix.from_coo(rows_full, np.clip(cols_full, 0, n - 1),
                              vals, (n, n))


def _stiffness_band(n: int, nnz_target: int, rng: Lcg) -> CsrMatrix:
    """bcsstk39 style: symmetric stiffness band of dense 4x4 node blocks."""
    dof = 4
    nodes = n // dof
    deg = max(nnz_target // (2 * n * dof), 2)
    base = np.repeat(np.arange(nodes, dtype=np.int64), deg)
    off = 1 + rng.integers(nodes * deg, 0, 3 * deg) % (3 * deg)
    tgt = np.minimum(base + off, nodes - 1)
    nrows = np.concatenate([base, tgt, np.arange(nodes, dtype=np.int64)])
    ncols = np.concatenate([tgt, base, np.arange(nodes, dtype=np.int64)])
    a = _expand_node_blocks(nrows, ncols, n, rng)
    # symmetrize values (structure is already symmetric)
    at = a.transpose()
    sym = CsrMatrix(a.indptr, a.indices, 0.5 * (a.data + at.data), a.shape)
    return sym


_FAMILIES: dict[str, Callable[[int, int, Lcg], CsrMatrix]] = {
    "banded-indefinite": _banded_indefinite,
    "seismic-grid": _seismic_grid,
    "dense-row-blocks": _dense_row_blocks,
    "qcd-lattice": _qcd_lattice,
    "stiffness-band": _stiffness_band,
}


def _top_up_nnz(a: CsrMatrix, target: int, rng: Lcg,
                symmetric: bool = False) -> CsrMatrix:
    """Add banded dense 4x4 node blocks until nnz is within ~2% of
    ``target`` (duplicate merging during construction loses entries).
    Blocks rather than scattered singles so the family's mBSR fill ratio
    is preserved.  With ``symmetric=True`` blocks are added in mirrored
    pairs so a symmetric family stays symmetric."""
    n = a.n_rows
    nodes = max(n // 4, 1)
    band = max(nodes // 20, 2)
    while a.nnz < 0.98 * target:
        deficit = target - a.nnz
        need = max(int(deficit * (0.65 if symmetric else 1.3)) // 16, 1)
        nrows = rng.integers(need, 0, nodes)
        ncols = np.clip(nrows + rng.integers(need, -band, band + 1),
                        0, nodes - 1)
        if symmetric:
            nrows, ncols = np.concatenate([nrows, ncols]), \
                np.concatenate([ncols, nrows])
        patch = _expand_node_blocks(nrows, ncols, n, rng)
        all_rows = np.concatenate([a.row_of_entry(), patch.row_of_entry()])
        all_cols = np.concatenate([a.indices, patch.indices])
        all_vals = np.concatenate([a.data, patch.data])
        a = CsrMatrix.from_coo(all_rows, all_cols, all_vals, a.shape)
    return a


def _generator_token() -> str:
    import sys

    from ..sparse import csr
    from . import synthetic
    return source_token(sys.modules[__name__], csr, synthetic)


def generate_matrix(name: str, scale: float = 1.0,
                    seed: int = 1325) -> CsrMatrix:
    """Generate the synthetic stand-in for a Table 4 matrix.

    ``scale`` shrinks both dimensions and nonzeros (for quick tests);
    ``scale=1`` reproduces the cataloged size.  Results are content-address
    cached (memory + disk) per (name, scale, seed) since full-scale
    generation takes seconds; the key includes a hash of this module and
    its dependencies, so editing a generator invalidates its entries.
    Repeated in-process calls return the same object.
    """
    key = content_key("suitesparse", _generator_token(), name,
                      float(scale), int(seed))
    with stage("datasets.generate_matrix"):
        return default_cache().get_or_compute(
            "matrix", key,
            lambda: _generate_matrix_uncached(name, scale, seed))


def _generate_matrix_uncached(name: str, scale: float,
                              seed: int) -> CsrMatrix:
    info = matrix_info(name)
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    n = max(int(info.rows * scale), 64)
    nnz = max(int(info.nnz * scale), 4 * n)
    if info.family == "qcd-lattice":
        # keep the 12-component block structure intact at any scale
        comp = 12
        sites = max(n // comp, 16)
        side = max(int(round(sites ** 0.25)), 2)
        n = (side ** 4) * comp
    # stable per-name seed offset (Python's hash() is salted per process)
    name_tag = sum(ord(ch) * (i + 1) for i, ch in enumerate(name))
    rng = Lcg(seed + name_tag % 100003)
    a = _FAMILIES[info.family](n, nnz, rng)
    symmetric = info.family == "stiffness-band"
    a = _top_up_nnz(a, nnz, rng, symmetric=symmetric)
    if symmetric:
        # top-up blocks carry independent random values; fold A with A^T
        # so values (not just structure) are symmetric
        at = a.transpose()
        a = CsrMatrix(a.indptr, a.indices, 0.5 * (a.data + at.data), a.shape)
    return a
