"""Synthetic stand-ins for the SuiteSparse graphs of Table 3.

The five BFS graphs (wikipedia-20070206, mycielskian17, wb-edu,
kron_g500-logn21, com-Orkut) total half a billion edges — far beyond what a
Python frontier simulation can traverse.  Each is replaced by a structurally
faithful generator at a reduced scale (recorded in ``GraphInfo.scale_note``):

* the Mycielskian and Kronecker graphs use the *exact published recursions*
  (Mycielski's construction; the Graph500 R-MAT sampler) at smaller orders;
* the web graphs (wikipedia, wb-edu) use a copying/preferential-attachment
  model producing the heavy-tailed in-degree distribution BFS frontiers see;
* com-Orkut uses an undirected preferential-attachment community model.

What BFS performance depends on — frontier growth profile, degree skew,
diameter regime — is preserved; absolute traversal rates are not the target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.cache import content_key, default_cache, source_token
from ..perf.instrument import stage
from ..sparse.csr import CsrMatrix
from .synthetic import Lcg

__all__ = [
    "GraphInfo",
    "BFS_GRAPHS",
    "generate_graph",
    "graph_info",
    "mycielskian",
    "kronecker_edges",
]


@dataclass(frozen=True)
class GraphInfo:
    """Catalog entry mirroring one row of Table 3 (original sizes), plus the
    scaled size this reproduction generates."""

    name: str
    vertices: int
    edges: int
    group: str
    family: str
    gen_vertices: int
    gen_edges: int
    scale_note: str


BFS_GRAPHS: tuple[GraphInfo, ...] = (
    GraphInfo("wikipedia-20070206", 3_566_907, 90_043_704, "Gleich",
              "web-copying", 16_000, 400_000,
              "copying model, scaled to preserve the ~25 avg degree"),
    GraphInfo("mycielskian17", 98_303, 100_245_742, "Mycielski",
              "mycielskian", 3_071, 407_200,
              "exact Mycielskian recursion, order 12 instead of 17"),
    GraphInfo("wb-edu", 9_845_725, 112_468_163, "SNAP",
              "web-copying", 42_000, 480_000,
              "copying model, scaled to preserve the ~11 avg degree"),
    GraphInfo("kron_g500-logn21", 2_097_152, 182_082_942, "DIMACS10",
              "kronecker", 8_192, 524_288,
              "Graph500 R-MAT at scale 13, edge factor 64 (preserves the"
              " ~87 avg degree)"),
    GraphInfo("com-Orkut", 3_072_441, 234_370_166, "SNAP",
              "social-pa", 8_000, 600_000,
              "preferential attachment, scaled to preserve the ~76 avg"
              " degree"),
)

_BY_NAME = {g.name: g for g in BFS_GRAPHS}


def graph_info(name: str) -> GraphInfo:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown graph {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


# --------------------------------------------------------------------------
def mycielskian(order: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Edges of the Mycielskian graph M_order (M2 = K2), as undirected
    (src, dst) arrays with both directions included, plus vertex count.

    Mycielski's construction: given G = (V, E) with |V| = n, add shadow
    vertices u_i (u_i ~ neighbors of v_i) and an apex w adjacent to all u_i.
    """
    if order < 2:
        raise ValueError("order must be >= 2")
    # M2 = K2
    src = np.array([0, 1], dtype=np.int64)
    dst = np.array([1, 0], dtype=np.int64)
    n = 2
    for _ in range(order - 2):
        # shadow edges: v_i - u_j for every original edge v_i - v_j
        shadow_src = np.concatenate([src, dst + n])
        shadow_dst = np.concatenate([dst + n, src])
        apex = 2 * n
        apex_src = np.concatenate([np.arange(n, 2 * n, dtype=np.int64),
                                   np.full(n, apex, dtype=np.int64)])
        apex_dst = np.concatenate([np.full(n, apex, dtype=np.int64),
                                   np.arange(n, 2 * n, dtype=np.int64)])
        src = np.concatenate([src, shadow_src, apex_src])
        dst = np.concatenate([dst, shadow_dst, apex_dst])
        n = 2 * n + 1
    return src, dst, n


def kronecker_edges(scale: int, edge_factor: int, rng: Lcg,
                    a: float = 0.57, b: float = 0.19, c: float = 0.19,
                    permute: bool = True
                    ) -> tuple[np.ndarray, np.ndarray, int]:
    """Graph500 R-MAT Kronecker edge sampler at ``2**scale`` vertices.

    ``permute=False`` keeps the raw recursive labels (endpoints then
    concentrate at low vertex ids, as in an unshuffled crawl)."""
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    c_norm = c / (1.0 - ab)
    for bit in range(scale):
        u1 = rng.uniform(m, 0.0, 1.0)
        u2 = rng.uniform(m, 0.0, 1.0)
        src_bit = u1 > ab
        dst_bit = np.where(src_bit, u2 > c_norm, u2 > a / ab)
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    if not permute:
        return src, dst, n
    # permute vertex labels so degree is not correlated with id
    perm = rng.permutation(n)
    return perm[src], perm[dst], n


def _web_copying(n: int, m: int, rng: Lcg, copy_p: float = 0.7,
                 host_size: int = 128, intra_p: float = 0.7,
                 hub_frac: float = 0.08
                 ) -> tuple[np.ndarray, np.ndarray, int]:
    """Web-graph model: copying (power-law in-degree) plus host locality.

    Real web crawls are lexicographically ordered by URL, which clusters
    most links inside a vertex-id neighborhood (the "host"); a hub core
    (portals) links broadly, keeping the graph reachable.  Both properties
    matter here: locality packs the 8x128 bit tiles densely, and the hub
    core gives BFS a large reachable component.
    """
    n_hubs = max(n // 500, 16)
    # hub edges: from the core to uniformly random targets
    m_hub = int(m * hub_frac)
    hub_src = rng.integers(m_hub, 0, n_hubs)
    hub_dst = rng.integers(m_hub, 0, n)
    # remaining edges: random sources; targets intra-host or copied
    m_rest = m - m_hub
    # intra-host links: source and target in the same URL neighborhood
    m_intra = int(m_rest * intra_p)
    intra_src = rng.integers(m_intra, 0, n)
    within = rng.integers(m_intra, 0, host_size)
    intra_dst = np.minimum((intra_src // host_size) * host_size + within,
                           n - 1)
    # far links: targets concentrate on a small popular set (the web's
    # heavy-tailed in-degree), sources uniform; a slice of uniform targets
    # keeps the tail connected
    m_far = m_rest - m_intra
    n_popular = max(min(n // 16, 512), 8)
    # topical locality: most links into the popular set come from hub
    # hosts (directories, portals) occupying the low id range
    src_hubhost = rng.integers(m_far, 0, max(n // 8, 1))
    src_any = rng.integers(m_far, 0, n)
    far_src = np.where(rng.choice_mask(m_far, 0.6), src_hubhost, src_any)
    popular = rng.integers(m_far, 0, n_popular)
    uniform = rng.integers(m_far, 0, n)
    far_dst = np.where(rng.choice_mask(m_far, 0.93), popular, uniform)
    return (np.concatenate([hub_src, intra_src, far_src]),
            np.concatenate([hub_dst, intra_dst, far_dst]), n)


def _social_pa(n: int, m: int, rng: Lcg, community: int = 128,
               intra_p: float = 0.75
               ) -> tuple[np.ndarray, np.ndarray, int]:
    """Undirected preferential attachment with dense friend communities.

    Social networks like Orkut are dominated by tightly-knit groups;
    three quarters of each vertex's edges stay inside its ~128-member
    community (which also packs the 8x128 bit tiles), the rest attach
    preferentially to global hubs."""
    half = m // 2
    src = rng.integers(half, 0, n)
    within = rng.integers(half, 0, community)
    local = np.minimum((src // community) * community + within, n - 1)
    # far links attach to a small set of global hubs (celebrity accounts),
    # with a uniform tail to keep every community reachable
    n_hubs = max(min(n // 16, 512), 8)
    hubs = rng.integers(half, 0, n_hubs)
    uniform = rng.integers(half, 0, n)
    far = np.where(rng.choice_mask(half, 0.9), hubs, uniform)
    dst = np.where(rng.choice_mask(half, intra_p), local, far)
    return (np.concatenate([src, dst]),
            np.concatenate([dst, src]), n)


def _generator_token() -> str:
    import sys

    from . import synthetic
    return source_token(sys.modules[__name__], synthetic)


def generate_graph(name: str, seed: int = 1325
                   ) -> tuple[np.ndarray, np.ndarray, int]:
    """Generate the scaled synthetic stand-in for a Table 3 graph.

    Returns directed (src, dst) edge arrays and the vertex count.  Self
    loops are removed; duplicate edges are kept (BFS ignores them, and the
    originals contain them too).  Results are content-address cached
    (memory + disk) per (name, seed); editing this module or the LCG
    invalidates the entries.  Repeated in-process calls return the same
    object.
    """
    key = content_key("graph", _generator_token(), name, int(seed))
    with stage("datasets.generate_graph"):
        return default_cache().get_or_compute(
            "graph", key, lambda: _generate_graph_uncached(name, seed))


def _generate_graph_uncached(name: str, seed: int
                             ) -> tuple[np.ndarray, np.ndarray, int]:
    info = graph_info(name)
    name_tag = sum(ord(ch) * (i + 1) for i, ch in enumerate(name))
    rng = Lcg(seed + name_tag % 100003)
    if info.family == "mycielskian":
        src, dst, n = mycielskian(12)
    elif info.family == "kronecker":
        src, dst, n = kronecker_edges(13, 64, rng)
    elif info.family == "web-copying":
        src, dst, n = _web_copying(info.gen_vertices, info.gen_edges, rng)
    elif info.family == "social-pa":
        src, dst, n = _social_pa(info.gen_vertices, info.gen_edges, rng)
    else:  # pragma: no cover - catalog is static
        raise ValueError(f"unknown family {info.family!r}")
    keep = src != dst
    return src[keep], dst[keep], n


def graph_to_csr(src: np.ndarray, dst: np.ndarray, n: int) -> CsrMatrix:
    """Adjacency CSR with unit weights (duplicates collapsed)."""
    vals = np.ones(len(src))
    a = CsrMatrix.from_coo(src, dst, vals, (n, n))
    a.data[:] = 1.0  # collapse duplicate-edge sums back to unit weight
    return a
