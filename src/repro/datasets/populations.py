"""Population generators for the benchmark-coverage study (Figure 10).

The paper standardizes structural features of 2893 SuiteSparse matrices and
499 graphs, applies PCA, and shows the five chosen matrices/graphs span the
population.  Without the collection itself, we synthesize populations that
cover the same structural axes — size, density, degree skew, bandedness,
blockiness — from a fixed set of generator families swept over wide
parameter ranges.  The default population sizes match the paper; pass a
smaller ``count`` for quick runs.

Generation is split into two phases so it can fan out without perturbing
determinism: a serial *draw* phase consumes the shared LCG stream in
exactly the original order and produces raw COO arrays, and a pure *build*
phase (CSR construction / edge filtering, the expensive part) maps batches
through a :class:`~repro.perf.executor.ParallelExecutor`.  The yielded
sequence is bit-identical for any ``n_jobs``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..perf.executor import ParallelExecutor
from ..perf.instrument import stage
from ..sparse.csr import CsrMatrix
from .synthetic import Lcg

__all__ = ["matrix_population", "graph_population"]

_FAMILY_COUNT = 6

#: draws buffered between executor fan-outs (bounds peak COO memory)
_POPULATION_BATCH = 64

_CooDraw = tuple[np.ndarray, np.ndarray, np.ndarray, tuple[int, int]]


def _random_uniform(n: int, per_row: int, rng: Lcg) -> _CooDraw:
    rows = np.repeat(np.arange(n, dtype=np.int64), per_row)
    cols = rng.integers(n * per_row, 0, n)
    return rows, cols, rng.uniform(n * per_row), (n, n)


def _banded(n: int, per_row: int, rng: Lcg) -> _CooDraw:
    band = max(per_row, 2)
    rows = np.repeat(np.arange(n, dtype=np.int64), per_row)
    cols = np.clip(rows + rng.integers(n * per_row, -band, band + 1), 0, n - 1)
    return rows, cols, rng.uniform(n * per_row), (n, n)


def _block_diag(n: int, per_row: int, rng: Lcg) -> _CooDraw:
    bs = max(per_row, 4)
    rows = np.repeat(np.arange(n, dtype=np.int64), per_row)
    cols = (rows // bs) * bs + rng.integers(n * per_row, 0, bs)
    cols = np.minimum(cols, n - 1)
    return rows, cols, rng.uniform(n * per_row), (n, n)


def _power_law_rows(n: int, per_row: int, rng: Lcg) -> _CooDraw:
    # heavy-tailed row lengths: a few hub rows carry most entries
    u = rng.uniform(n, 0.0, 1.0)
    lengths = np.minimum((per_row * (1.0 / np.maximum(u, 1e-3)) ** 0.7)
                         .astype(np.int64), n - 1)
    total = int(lengths.sum())
    rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
    cols = rng.integers(total, 0, n)
    return rows, cols, rng.uniform(total), (n, n)


def _lower_triangular(n: int, per_row: int, rng: Lcg) -> _CooDraw:
    rows = np.repeat(np.arange(n, dtype=np.int64), per_row)
    cols = rng.integers(n * per_row, 0, n) % np.maximum(rows, 1)
    return rows, cols, rng.uniform(n * per_row), (n, n)


def _grid_stencil(n: int, per_row: int, rng: Lcg) -> _CooDraw:
    side = max(int(np.sqrt(n)), 2)
    n = side * side
    offs = np.array([0, -1, 1, -side, side], dtype=np.int64)[:max(per_row, 3)]
    rows = np.repeat(np.arange(n, dtype=np.int64), len(offs))
    cols = np.clip(rows + np.tile(offs, n), 0, n - 1)
    return rows, cols, rng.uniform(len(rows)), (n, n)


_MATRIX_FAMILIES = (_random_uniform, _banded, _block_diag, _power_law_rows,
                    _lower_triangular, _grid_stencil)


def _build_csr(draw: _CooDraw) -> CsrMatrix:
    """Pure build phase: COO draw -> CSR (no randomness consumed)."""
    rows, cols, vals, shape = draw
    return CsrMatrix.from_coo(rows, cols, vals, shape)


def matrix_population(count: int = 2893, seed: int = 1325,
                      max_rows: int = 2048, *, n_jobs: int | None = None,
                      executor: ParallelExecutor | None = None
                      ) -> Iterator[CsrMatrix]:
    """Yield ``count`` small matrices sweeping the structural axes."""
    rng = Lcg(seed)
    ex = executor if executor is not None else ParallelExecutor(n_jobs)
    batch: list[_CooDraw] = []
    for i in range(count):
        family = _MATRIX_FAMILIES[i % len(_MATRIX_FAMILIES)]
        n = int(rng.integers(1, 64, max_rows)[0])
        per_row = int(rng.integers(1, 2, 33)[0])
        batch.append(family(n, per_row, rng))
        if len(batch) >= _POPULATION_BATCH:
            with stage("datasets.matrix_population"):
                built = ex.map(_build_csr, batch)
            yield from built
            batch = []
    if batch:
        with stage("datasets.matrix_population"):
            built = ex.map(_build_csr, batch)
        yield from built


_GraphDraw = tuple[np.ndarray, np.ndarray, int]


def _finish_graph(draw: _GraphDraw) -> _GraphDraw:
    """Pure build phase: drop self loops (no randomness consumed)."""
    src, dst, n = draw
    keep = src != dst
    return src[keep], dst[keep], n


def _draw_graph(i: int, rng: Lcg, max_vertices: int) -> _GraphDraw:
    n = int(rng.integers(1, 128, max_vertices)[0])
    avg_deg = int(rng.integers(1, 2, 40)[0])
    m = n * avg_deg
    kind = i % 6
    if kind == 0:  # uniform random (Erdos-Renyi flavour)
        src = rng.integers(m, 0, n)
        dst = rng.integers(m, 0, n)
    elif kind == 1:  # power-law out-degree
        u = rng.uniform(n, 0.0, 1.0)
        deg = np.minimum((avg_deg * (1.0 / np.maximum(u, 1e-3)) ** 0.6)
                         .astype(np.int64), n - 1)
        src = np.repeat(np.arange(n, dtype=np.int64), deg)
        dst = rng.integers(len(src), 0, n)
    elif kind == 2:  # ring lattice with shortcuts (small-world)
        base = np.arange(n, dtype=np.int64)
        src = np.tile(base, max(avg_deg, 1))
        hops = np.repeat(np.arange(1, max(avg_deg, 1) + 1,
                                   dtype=np.int64), n)
        dst = (src + hops) % n
        rewire = rng.choice_mask(len(src), 0.1)
        dst = np.where(rewire, rng.integers(len(src), 0, n), dst)
    elif kind == 3:  # two-community structure
        comm = rng.choice_mask(n, 0.5)
        src = rng.integers(m, 0, n)
        same = rng.choice_mask(m, 0.85)
        cand = rng.integers(m, 0, n)
        # resample targets until most stay within the source community
        match = comm[src] == comm[cand]
        dst = np.where(same & ~match,
                       (cand + 1) % n, cand)
    elif kind == 4:  # host-local web-like (id-neighborhood locality)
        host = max(int(rng.integers(1, 32, 256)[0]), 8)
        src = rng.integers(m, 0, n)
        within = rng.integers(m, 0, host)
        local = np.minimum((src // host) * host + within, n - 1)
        far = rng.integers(m, 0, n)
        dst = np.where(rng.choice_mask(m, 0.7), local, far)
    else:  # hub-concentrated (social/star-like in-degree mass)
        hubs = max(n // 32, 2)
        src = rng.integers(m, 0, n)
        hub_dst = rng.integers(m, 0, hubs)
        uni_dst = rng.integers(m, 0, n)
        dst = np.where(rng.choice_mask(m, 0.8), hub_dst, uni_dst)
    return src, dst, n


def graph_population(count: int = 499, seed: int = 1325,
                     max_vertices: int = 4096, *, n_jobs: int | None = None,
                     executor: ParallelExecutor | None = None
                     ) -> Iterator[tuple[np.ndarray, np.ndarray, int]]:
    """Yield ``count`` small graphs as (src, dst, n) triplets, alternating
    uniform, power-law, grid-like, and community-structured families."""
    rng = Lcg(seed)
    ex = executor if executor is not None else ParallelExecutor(n_jobs)
    batch: list[_GraphDraw] = []
    for i in range(count):
        batch.append(_draw_graph(i, rng, max_vertices))
        if len(batch) >= _POPULATION_BATCH:
            with stage("datasets.graph_population"):
                built = ex.map(_finish_graph, batch)
            yield from built
            batch = []
    if batch:
        with stage("datasets.graph_population"):
            built = ex.map(_finish_graph, batch)
        yield from built
