"""Deterministic pseudo-random input generation.

The paper initializes inputs with "pseudo-random values distributed within
(-2, 2) using a linear congruential generator method, following the LINPACK
benchmark" (Section 8).  :class:`Lcg` implements a 48-bit LCG with the
classic ``drand48`` multiplier and reproduces the exact sequential sequence
through a vectorized leapfrog scheme, so generating millions of values does
not require a Python-level loop per value.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Lcg", "default_rng"]

_A = 0x5DEECE66D
_C = 0xB
_MOD_BITS = 48
_MASK = (1 << _MOD_BITS) - 1
#: streams used by the vectorized leapfrog
_LANES = 1024

#: per-lane affine constants (a^i mod 2^48, c-sum_i) for i = 1.._LANES,
#: computed once per process — they depend only on the LCG constants, so
#: every generator shares them and seeding needs no Python-level loop
_LANE_AFFINE: tuple[np.ndarray, np.ndarray] | None = None


def _lane_affine() -> tuple[np.ndarray, np.ndarray]:
    global _LANE_AFFINE
    if _LANE_AFFINE is None:
        a_pows = np.empty(_LANES, dtype=np.uint64)
        c_sums = np.empty(_LANES, dtype=np.uint64)
        a_i, c_i = 1, 0
        for i in range(_LANES):
            a_i, c_i = (_A * a_i) & _MASK, (_A * c_i + _C) & _MASK
            a_pows[i] = a_i
            c_sums[i] = c_i
        _LANE_AFFINE = (a_pows, c_sums)
    return _LANE_AFFINE


class Lcg:
    """48-bit linear congruential generator, LINPACK style.

    ``state_{i+1} = (a * state_i + c) mod 2^48`` with the drand48 constants.
    ``uniform(n)`` returns exactly the values a scalar implementation would
    produce, in order (verified by a unit test), but computes them in
    vectorized lane batches.
    """

    def __init__(self, seed: int = 1325) -> None:
        # 1325 is the historical LINPACK matgen seed
        self.state = (int(seed) ^ _A) & _MASK
        # leapfrog constants: A_L = a^L, C_L = c * (a^{L-1} + ... + 1) —
        # the last row of the shared per-lane affine table
        a_pows, c_sums = _lane_affine()
        self._a_lane = int(a_pows[-1])
        self._c_lane = int(c_sums[-1])

    # ------------------------------------------------------------------
    def _raw(self, n: int) -> np.ndarray:
        """Next ``n`` raw 48-bit states, exact sequential order."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        # seed the first min(n, LANES) states in one vectorized affine
        # step: state_i = a^i * s + c_i (mod 2^48).  uint64 wraparound is
        # harmless — only the low 48 bits of the product survive the mask,
        # and those are exact, so this matches the scalar loop bit-for-bit
        lanes = min(n, _LANES)
        a_pows, c_sums = _lane_affine()
        with np.errstate(over="ignore"):
            first = (a_pows[:lanes] * np.uint64(self.state)
                     + c_sums[:lanes]) & np.uint64(_MASK)
        rows = (n + lanes - 1) // lanes
        out = np.empty((rows, lanes), dtype=np.uint64)
        out[0] = first
        if rows > 1:
            a = np.uint64(self._a_lane)
            c = np.uint64(self._c_lane)
            mask = np.uint64(_MASK)
            cur = first.copy()
            with np.errstate(over="ignore"):
                for r in range(1, rows):
                    cur = (a * cur + c) & mask
                    out[r] = cur
        flat = out.reshape(-1)[:n]
        # advance the scalar state to position n exactly
        a_n, c_n = 1, 0
        remaining = n
        a_step, c_step = _A, _C
        while remaining:
            if remaining & 1:
                a_n, c_n = (a_step * a_n) & _MASK, (a_step * c_n + c_step) & _MASK
            a_step, c_step = (a_step * a_step) & _MASK, \
                (a_step * c_step + c_step) & _MASK
            remaining >>= 1
        self.state = (a_n * self.state + c_n) & _MASK
        return flat

    # ------------------------------------------------------------------
    def uniform(self, n: int, low: float = -2.0, high: float = 2.0,
                shape: tuple[int, ...] | None = None) -> np.ndarray:
        """``n`` doubles uniform in ``[low, high)`` (paper default (-2, 2)).

        Two 48-bit draws are combined per value so the full 53-bit double
        mantissa is populated.  A single 48-bit draw would make every value
        a short dyadic rational whose partial sums are *exact* in FP64 —
        all accumulation orders would then agree bit-for-bit and the
        Table 6 accuracy study would degenerate to zeros.
        """
        raw = self._raw(2 * n).astype(np.float64)
        u = (raw[0::2] + raw[1::2] / float(1 << _MOD_BITS)) \
            / float(1 << _MOD_BITS)
        vals = low + (high - low) * u
        return vals.reshape(shape) if shape is not None else vals

    def uniform48(self, n: int, low: float = 0.0, high: float = 1.0,
                  shape: tuple[int, ...] | None = None) -> np.ndarray:
        """Single-draw 48-bit uniforms: the exact classical LCG sequence
        (one value per state step), used where sequence fidelity matters
        more than mantissa coverage."""
        u = self._raw(n).astype(np.float64) / float(1 << _MOD_BITS)
        vals = low + (high - low) * u
        return vals.reshape(shape) if shape is not None else vals

    def integers(self, n: int, low: int, high: int) -> np.ndarray:
        """``n`` integers uniform in ``[low, high)``."""
        if high <= low:
            raise ValueError("high must exceed low")
        span = high - low
        return (low + (self._raw(n) % np.uint64(span)).astype(np.int64))

    def choice_mask(self, n: int, p: float) -> np.ndarray:
        """Boolean mask with independent probability ``p`` per slot."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        return self._raw(n).astype(np.float64) / float(1 << _MOD_BITS) < p

    def permutation(self, n: int) -> np.ndarray:
        """A deterministic permutation of ``range(n)`` (sort of LCG keys)."""
        return np.argsort(self._raw(n), kind="stable").astype(np.int64)


def default_rng(seed: int = 1325) -> Lcg:
    """The package-wide default generator (LINPACK seed)."""
    return Lcg(seed)
