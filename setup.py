from setuptools import setup

# Legacy shim: this environment's setuptools predates PEP 660 editable
# installs, so `pip install -e .` goes through setup.py develop.
setup()
