"""Graph reachability with the BerryBees-style bit-tensor BFS.

Runs breadth-first search over the five Table 3 graph stand-ins, printing
level histograms (the frontier growth the paper's Quadrant IV analysis
depends on) and the TC / CC / CC-E / Gunrock comparison on the simulated
H200.

Usage:  python examples/graph_reachability.py [graph-name]
"""

import sys

import numpy as np

from repro.datasets import BFS_GRAPHS
from repro.gpu import Device
from repro.kernels import BfsWorkload, Variant
from repro.harness import format_seconds, format_table


def explore(name: str | None = None) -> None:
    w = BfsWorkload()
    device = Device("H200")
    cases = [c for c in w.cases() if name is None or c.label == name]
    if not cases:
        raise SystemExit(
            f"unknown graph {name!r}; options: "
            + ", ".join(g.name for g in BFS_GRAPHS))
    for case in cases:
        data = w.prepare(case)
        results = {v: w.execute(v, data, device) for v in w.variants()}
        levels = results[Variant.TC].output
        reached = levels >= 0
        print(f"\n=== {case.label}: {data['n']:,} vertices, "
              f"{data['n_edges']:,} edges ===")
        print(f"bitmap tiles: {data['bitmap'].n_tiles:,} "
              f"({data['bitmap'].bits_per_edge:.1f} stored bits/edge)")
        print(f"reached {int(reached.sum()):,} vertices "
              f"({reached.mean():.0%}) in {int(levels.max())} levels")
        hist = np.bincount(levels[reached])
        print("frontier sizes per level:",
              " ".join(f"{h:,}" for h in hist))
        rows = []
        t_tc = results[Variant.TC].time_s
        for v, r in results.items():
            rows.append([v.value, format_seconds(r.time_s),
                         f"{r.power_w:.0f} W",
                         f"{t_tc / r.time_s:.2f}x"])
        print(format_table(["variant", "modeled time", "power",
                            "vs TC"], rows))


if __name__ == "__main__":
    explore(sys.argv[1] if len(sys.argv) > 1 else None)
