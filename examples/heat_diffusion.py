"""Heat diffusion on a 2-D plate via the stencil workload.

A scientific-application view of the Cubie stencil kernel: an explicit
finite-difference heat solver steps a plate with a hot corner, using the
LoRAStencil-style low-rank sweep for the update.  Each simulated timestep
is costed on the simulated H200 for both the tensor-core and the DRStencil
baseline variants, so the script reports the end-to-end application-level
speedup and energy saving the paper's Section 7 example describes
(Stencil: 15 s baseline vs 5.5 s TC).

Usage:  python examples/heat_diffusion.py [n] [steps]
"""

import sys

import numpy as np

from repro.gpu import Device
from repro.kernels import StencilWorkload, Variant
from repro.kernels.stencil import STAR2D1R_WEIGHTS


def simulate(n: int = 2048, steps: int = 200) -> None:
    w = StencilWorkload()
    device = Device("H200")

    # initial condition: cold plate, hot corner blob
    grid = np.zeros((n, n))
    grid[: n // 8, : n // 8] = 100.0

    # one analytic stencil sweep costs this much per variant
    from repro.kernels.base import WorkloadCase
    case = WorkloadCase(label=f"heat:{n}x{n}",
                        params={"kind": "star2d1r", "nx": n, "ny": n,
                                "nz": 1})
    cost = {v: device.resolve(w.analytic_stats(v, case))
            for v in (Variant.TC, Variant.BASELINE)}

    data = {"kind": "star2d1r", "grid": grid, "nx": n, "ny": n, "nz": 1}
    total_heat0 = grid.sum()
    for step in range(steps):
        data["grid"] = w._sweep(data, order="lowrank")
    c0, cx, cy = STAR2D1R_WEIGHTS

    print(f"Heat diffusion, {n}x{n} plate, {steps} steps "
          f"(weights c0={c0}, cx={cx}, cy={cy})")
    print(f"  initial heat {total_heat0:10.1f}")
    print(f"  final heat   {data['grid'].sum():10.1f} "
          f"(open boundary: heat leaks out)")
    print(f"  hottest cell {data['grid'].max():10.3f}")
    print()
    t_tc = cost[Variant.TC].time_s * steps
    t_base = cost[Variant.BASELINE].time_s * steps
    e_tc = cost[Variant.TC].energy_j * steps
    e_base = cost[Variant.BASELINE].energy_j * steps
    print(f"Modeled on {device.spec.name} for {steps} sweeps:")
    print(f"  tensor-core (LoRAStencil) : {t_tc * 1e3:8.2f} ms, "
          f"{e_tc:8.2f} J at {cost[Variant.TC].power_w:.0f} W")
    print(f"  baseline (DRStencil)      : {t_base * 1e3:8.2f} ms, "
          f"{e_base:8.2f} J at {cost[Variant.BASELINE].power_w:.0f} W")
    print(f"  speedup {t_base / t_tc:.2f}x, energy saved "
          f"{(1 - e_tc / e_base) * 100:.0f}%")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 200
    simulate(n, steps)
