"""Quickstart: evaluate one workload on the three simulated GPUs.

Runs the GEMM workload functionally (real FP64 arithmetic through the MMA
emulation) and through the analytic model at paper scale, printing the
TC-vs-baseline comparison the paper's Figure 4 reports.

Usage:  python examples/quickstart.py [workload]
"""

import sys

import numpy as np

from repro import Device, Variant, get_workload
from repro.harness import format_seconds, format_table


def main(name: str = "gemm") -> None:
    workload = get_workload(name)
    print(f"Workload: {workload.name} (Quadrant {workload.quadrant.value}, "
          f"dwarf: {workload.dwarf})")
    print(f"Baseline: {workload.baseline_name}\n")

    # 1. functional execution: real outputs, measured counters
    device = Device("H200")
    case = workload.exec_case(workload.representative_case())
    data = workload.prepare(case)
    reference = workload.reference(data)
    print(f"Functional run of case {case.label!r} on {device.spec.name}:")
    for variant in workload.variants():
        result = workload.execute(variant, data, device)
        err = np.abs(np.asarray(result.output, dtype=complex)
                     - np.asarray(reference, dtype=complex)).max()
        print(f"  {variant.value:9s} modeled time {format_seconds(result.time_s):>10s}"
              f"   max error vs serial CPU: {err:.2e}")

    # 2. analytic model at paper scale, all GPUs
    rows = []
    for gpu in ("A100", "H200", "B200"):
        dev = Device(gpu)
        for c in workload.cases():
            tc = dev.resolve(workload.analytic_stats(Variant.TC, c))
            line = [gpu, c.label, format_seconds(tc.time_s),
                    f"{tc.tflops:.2f} TFLOP/s" if tc.flops else "-"]
            if Variant.BASELINE in workload.variants():
                base = dev.resolve(
                    workload.analytic_stats(Variant.BASELINE, c))
                line.append(f"{base.time_s / tc.time_s:.2f}x")
            else:
                line.append("-")
            rows.append(line)
    print()
    print(format_table(
        ["GPU", "Case", "TC time", "TC perf", "TC/baseline"],
        rows, title="Paper-scale model (Figure 3/4 view)"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gemm")
