"""Characterize your own kernel with the Cubie methodology.

Shows the full extension workflow: define a new :class:`Workload` (here a
batched AXPY-like waveform update expressed through 8x4 MMA blocks),
register nothing — just instantiate it — and reuse the suite's analyses:
quadrant classification, roofline placement, EDP, and accuracy, across the
three simulated GPUs.

Usage:  python examples/characterize_custom_kernel.py
"""

import numpy as np

from repro.analysis import classify, workload_point
from repro.datasets import Lcg
from repro.gpu import Device, KernelStats
from repro.gpu.mma import mma_fp64_batched
from repro.harness import format_seconds, format_table
from repro.kernels import CC_EFF, CC_EFF_MMA, TC_EFF, Variant
from repro.kernels.base import Quadrant, Workload, WorkloadCase, ceil_div


class WaveUpdateWorkload(Workload):
    """u_new = 2 u - u_old + c^2 dt^2 (u shifted sum): a leapfrog wave
    update whose 3-term stencil is packed into 8x4 MMA blocks against a
    constant coefficient operand — Quadrant II-style (constant input,
    full output)."""

    name = "wave-update"
    quadrant = Quadrant.II   # provisional; `classify` measures it below
    dwarf = "Structured grids"
    baseline_name = "vector leapfrog"
    has_cce = False
    edp_repeats = 1000

    #: the constant 4x8 coefficient operand (only 3 of 32 slots useful)
    COEFFS = np.zeros((4, 8))
    COEFFS[0, :] = 2.0
    COEFFS[1, :] = -1.0
    COEFFS[2, :] = 0.04

    def cases(self):
        return [WorkloadCase(label=f"{n >> 10}K", params={"n": n})
                for n in (1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24)]

    def exec_case(self, case):
        return WorkloadCase(label=case.label,
                            params={"n": min(case["n"], 1 << 18)})

    def prepare(self, case, seed=1325):
        rng = Lcg(seed)
        n = case["n"]
        return {"n": n, "u": rng.uniform(n), "u_old": rng.uniform(n),
                "lap": rng.uniform(n)}

    def reference(self, data):
        return (2.0 * data["u"] - data["u_old"]) + 0.04 * data["lap"]

    def execute(self, variant, data, device):
        variant = self.resolve_variant(variant)
        n = data["n"]
        if variant is Variant.BASELINE:
            out = (2.0 * data["u"] - data["u_old"]) + 0.04 * data["lap"]
        else:
            # A blocks: rows of 8 grid points x k = [u, u_old, lap, pad]
            blocks = ceil_div(n, 8)
            a = np.zeros((blocks, 8, 4))
            for k, field in enumerate(("u", "u_old", "lap")):
                a[..., k].reshape(-1)[:n] = data[field]
            c = mma_fp64_batched(a, np.broadcast_to(self.COEFFS,
                                                    (blocks, 4, 8)))
            out = c[:, :, 0].reshape(-1)[:n].copy()
        return device.resolve(self._stats(variant, n), output=out)

    def analytic_stats(self, variant, case):
        return self._stats(self.resolve_variant(variant), case["n"])

    def _stats(self, variant, n):
        st = KernelStats()
        st.essential_flops = 5.0 * n
        if variant is Variant.TC:
            st.add_mma_fp64(ceil_div(n, 8),
                            input_useful=ceil_div(n, 8) * (24 + 3.0),
                            output_useful=ceil_div(n, 8) * 8.0)
            st.tc_efficiency = TC_EFF
        elif variant is Variant.CC:
            st.add_mma_as_fma(ceil_div(n, 8))
            st.cc_efficiency = CC_EFF_MMA
        else:
            st.add_fma(5.0 * n)
            st.cc_efficiency = CC_EFF
        st.read_dram(24.0 * n, segment_bytes=1 << 16)
        st.write_dram(8.0 * n, segment_bytes=1 << 16)
        st.l1_bytes = 32.0 * n
        return st


def main():
    w = WaveUpdateWorkload()

    # functional correctness against the serial reference
    device = Device("H200")
    data = w.prepare(w.exec_case(w.cases()[-1]))
    ref = w.reference(data)
    tc = w.execute(Variant.TC, data, device)
    print(f"max |TC - serial| = {np.abs(tc.output - ref).max():.2e}")

    # measured quadrant placement
    profile = classify(w)
    print(f"measured utilization: input {profile.input_utilization:.2f}, "
          f"output {profile.output_utilization:.2f} "
          f"-> Quadrant {profile.quadrant.value}")

    # roofline position + cross-GPU comparison
    rows = []
    for gpu in ("A100", "H200", "B200"):
        dev = Device(gpu)
        p = workload_point(w, Variant.TC, dev)
        base = dev.resolve(w.analytic_stats(Variant.BASELINE,
                                            w.representative_case()))
        tc_r = dev.resolve(w.analytic_stats(Variant.TC,
                                            w.representative_case()))
        rows.append([gpu, f"{p.intensity:.2f}", p.bottleneck,
                     format_seconds(tc_r.time_s),
                     f"{base.time_s / tc_r.time_s:.2f}x"])
    print()
    print(format_table(
        ["GPU", "AI (flop/B)", "bound by", "TC time", "TC vs baseline"],
        rows, title="wave-update characterization"))
    print("\nVerdict: memory-bound with partial constant input — the MMU "
          "adds little for this kernel (compare Quadrant II discussion).")


if __name__ == "__main__":
    main()
