"""End-to-end solver study: CG on a Poisson system, with an execution
timeline and a Chrome-trace export.

Combines three layers of the library: the CG application (``repro.apps``),
per-kernel device costing (SpMV/Reduction workload models), and the
timeline/trace tooling (``repro.gpu.trace``).  Writes ``cg_timeline.json``
loadable in chrome://tracing or Perfetto.

Usage:  python examples/solver_timeline.py [grid-side]
"""

import sys
from pathlib import Path

import numpy as np

from repro.apps.cg import conjugate_gradient, modeled_iteration_cost
from repro.gpu import Device, KernelStats, Timeline
from repro.kernels import Variant
from repro.harness import format_table


def poisson_2d(side: int):
    from repro.sparse import CsrMatrix
    n = side * side
    rows, cols, vals = [], [], []
    for i in range(side):
        for j in range(side):
            k = i * side + j
            rows.append(k); cols.append(k); vals.append(4.0)
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < side and 0 <= jj < side:
                    rows.append(k); cols.append(ii * side + jj)
                    vals.append(-1.0)
    return CsrMatrix.from_coo(rows, cols, vals, (n, n))


def main(side: int = 48) -> None:
    a = poisson_2d(side)
    rng = np.random.default_rng(7)
    b = rng.uniform(-1, 1, a.n_rows)

    print(f"Solving the {side}x{side} Poisson system "
          f"(n={a.n_rows:,}, nnz={a.nnz:,}) with CG...")
    result = conjugate_gradient(a, b, tol=1e-10, max_iter=5000)
    print(f"  converged: {result.converged} in {result.iterations} "
          f"iterations, final relative residual "
          f"{result.final_residual:.2e}")

    # cost the solve on each GPU, per variant
    rows = []
    for gpu in ("A100", "H200", "B200"):
        dev = Device(gpu)
        for variant in (Variant.BASELINE, Variant.TC):
            c = modeled_iteration_cost(a, dev, variant)
            total = c["iteration_s"] * result.iterations
            rows.append([gpu, variant.value,
                         f"{c['iteration_s'] * 1e6:.1f} us",
                         f"{total * 1e3:.2f} ms",
                         f"{c['energy_j'] * result.iterations:.4f} J"])
    print()
    print(format_table(
        ["GPU", "SpMV variant", "per iteration", "whole solve", "energy"],
        rows, title="Modeled CG solve cost"))

    # build a timeline of the first iterations on H200 and export a trace
    dev = Device("H200")
    tl = Timeline(dev)
    from repro.kernels.spmv import SpmvWorkload
    from repro.sparse import DaspMatrix
    spmv_stats = SpmvWorkload()._stats(Variant.TC, a, DaspMatrix.from_csr(a))
    spmv_res = dev.resolve(spmv_stats)
    dot = KernelStats()
    dot.add_fma(2.0 * a.n_rows)
    dot.read_dram(16.0 * a.n_rows, segment_bytes=1 << 16)
    dot_res = dev.resolve(dot)
    for it in range(min(result.iterations, 8)):
        tl.record(f"spmv#{it}", spmv_res)
        tl.record(f"dot#{it}", dot_res, repeats=2)
        tl.gap(dev.spec.launch_overhead_s)
    print()
    print(tl.to_text(width=56))
    print(f"\ntimeline: {tl.busy_s * 1e6:.1f} us busy of "
          f"{tl.total_s * 1e6:.1f} us ({tl.utilization:.0%} utilization), "
          f"{tl.energy_j() * 1e3:.2f} mJ")
    out = Path("cg_timeline.json")
    out.write_text(tl.to_chrome_trace())
    print(f"chrome trace written to {out} (open in chrome://tracing)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
