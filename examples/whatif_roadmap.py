"""Roadmap what-if: which GPU would scientific computing actually want?

The paper's conclusion asks vendors to strengthen FP64 MMU capability
rather than regress it.  This example uses the what-if tooling to compare
three hypothetical Blackwell variants across the whole Cubie suite:

* ``B200`` as shipped (FP64 TC regressed to 40 TFLOPS, 1:1 with vector);
* ``B200-restored`` with Hopper's 2:1 FP64 tensor ratio;
* ``B200-bandwidth`` spending the same silicon on +25% HBM bandwidth.

Usage:  python examples/whatif_roadmap.py
"""

import numpy as np

from repro.harness import format_table
from repro.harness.whatif import evaluate_whatif, hypothetical
from repro.kernels import Variant, all_workloads


def main() -> None:
    workloads = all_workloads()
    scenarios = {
        "B200-restored (FP64 TC x2)": hypothetical(
            "B200", name="B200-restored", tc_fp64=2.0),
        "B200-bandwidth (HBM x1.25)": hypothetical(
            "B200", name="B200-bandwidth", dram_bw=1.25),
    }
    rows = []
    summary = {}
    for label, spec in scenarios.items():
        results = evaluate_whatif(workloads, "B200", spec, Variant.TC)
        for r in results:
            rows.append([label, r.workload, f"{r.speedup:.2f}x"])
        summary[label] = float(np.exp(np.mean(
            [np.log(r.speedup) for r in results])))
    print(format_table(["Scenario", "Workload", "Speedup vs B200"],
                       rows, title="Roadmap what-if across the suite"))
    print()
    for label, gm in summary.items():
        print(f"geomean suite speedup, {label}: {gm:.2f}x")
    print("\nReading: restoring the FP64 tensor ratio lifts the "
          "compute-bound kernels the paper champions, while extra "
          "bandwidth lifts the memory-bound majority — the roadmap "
          "tension in one table.")


if __name__ == "__main__":
    main()
