"""Jacobi iteration powered by the DASP tensor-core SpMV.

Solves A x = b for the bcsstk39 stiffness stand-in (diagonally dominant by
construction) with weighted-Jacobi iterations whose matrix-vector products
run through the Cubie SpMV variants.  Reports convergence and the modeled
per-solve time/energy on H200 per variant — the application-level view of
Observations 3-6 for a memory-bound kernel.

Usage:  python examples/jacobi_solver.py [matrix] [iterations]
"""

import sys

import numpy as np

from repro.datasets import Lcg, generate_matrix
from repro.gpu import Device
from repro.kernels import SpmvWorkload, Variant
from repro.harness import format_seconds, format_table


def solve(matrix: str = "bcsstk39", iterations: int = 60,
          scale: float = 0.1, omega: float = 0.7) -> None:
    from repro.sparse import CsrMatrix

    raw = generate_matrix(matrix, scale=scale)
    n = raw.n_rows
    # shift the system to diagonal dominance so Jacobi converges:
    # solve (A + sigma I) x = b with sigma = 1.1 * max row weight
    row_weight = np.zeros(n)
    np.add.at(row_weight, raw.row_of_entry(), np.abs(raw.data))
    sigma = 1.1 * float(row_weight.max())
    a = CsrMatrix.from_coo(
        np.concatenate([raw.row_of_entry(), np.arange(n)]),
        np.concatenate([raw.indices, np.arange(n)]),
        np.concatenate([raw.data, np.full(n, sigma)]),
        raw.shape)
    diag = np.zeros(n)
    rows = a.row_of_entry()
    on_diag = rows == a.indices
    diag[rows[on_diag]] = a.data[on_diag]

    rng = Lcg(42)
    x_true = rng.uniform(n)
    b = a.spmv_serial(x_true)

    x = np.zeros(n)
    residuals = []
    for _ in range(iterations):
        ax = a.spmv_serial(x)
        x = x + omega * (b - ax) / diag
        residuals.append(float(np.linalg.norm(b - a.spmv_serial(x))
                               / np.linalg.norm(b)))

    print(f"Jacobi on {matrix} (scale {scale}): n={n:,}, nnz={a.nnz:,}")
    print(f"  relative residual after {iterations} iterations: "
          f"{residuals[-1]:.3e}")
    marks = [0, iterations // 4, iterations // 2, iterations - 1]
    print("  residual history:",
          "  ".join(f"it{m + 1}:{residuals[m]:.1e}" for m in marks))

    # cost one solve per SpMV variant on the simulated H200
    w = SpmvWorkload(scale=scale)
    case = [c for c in w.cases() if c.label == matrix][0]
    device = Device("H200")
    rows_out = []
    for v in w.variants():
        r = device.resolve(w.analytic_stats(v, case))
        rows_out.append([v.value,
                         format_seconds(r.time_s * iterations),
                         f"{r.energy_j * iterations:.4f} J",
                         f"{r.power_w:.0f} W"])
    print()
    print(format_table(
        ["SpMV variant", f"{iterations}-iteration solve", "energy",
         "power"], rows_out,
        title=f"Modeled solve cost on H200 ({matrix})"))


if __name__ == "__main__":
    matrix = sys.argv[1] if len(sys.argv) > 1 else "bcsstk39"
    iters = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    solve(matrix, iters)
